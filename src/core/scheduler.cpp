#include "core/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/logging.hpp"
#include "core/dispatch_policy.hpp"
#include "obs/slo.hpp"

namespace sst::core {

namespace {
constexpr std::string_view kLog = "scheduler";
}  // namespace

StreamScheduler::StreamScheduler(exec::ExecutionContext& simulator,
                                 std::vector<blockdev::BlockDevice*> devices,
                                 SchedulerParams params)
    : sim_(simulator),
      devices_(std::move(devices)),
      params_(params),
      staging_(params.memory_budget, params.materialize_buffers),
      cpu_(simulator, params.host),
      dispatch_(make_policy(params.policy), devices_.size()),
      index_(devices_.size()),
      device_errors_(devices_.size(), 0) {
  assert(!devices_.empty());
  const Status valid = params_.validate();
  assert(valid.ok());
  (void)valid;
}

StreamScheduler::~StreamScheduler() { gc_event_.cancel(); }

void StreamScheduler::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->name_track(obs::kSchedulerTrack, "scheduler");
}

void StreamScheduler::arm_gc() {
  if (gc_event_.pending()) return;
  gc_event_ = sim_.schedule_after(params_.gc_period, [this]() {
    collect_garbage();
    if (!streams_.empty()) arm_gc();
  });
}

Stream* StreamScheduler::find_stream(std::uint32_t device, ByteOffset offset) {
  return index_.find(device, offset, params_.read_ahead,
                     [this](StreamId id) -> Stream& { return stream_ref(id); });
}

Stream& StreamScheduler::create_stream(std::uint32_t device, ByteOffset range_start,
                                       ByteOffset detection_end) {
  assert(device < devices_.size());
  auto stream = std::make_unique<Stream>();
  stream->id = next_stream_id_++;
  stream->device = device;
  stream->range_start = range_start;
  stream->prefetch_pos = std::min<ByteOffset>(detection_end, devices_[device]->capacity());
  stream->served_upto = detection_end;
  stream->last_activity = sim_.now();
  Stream& ref = *stream;
  index_.claim(device, range_start, stream->id);
  streams_.emplace(stream->id, std::move(stream));
  ++stats_.streams_created;
  arm_gc();
  if (tracer_ != nullptr) {
    tracer_->name_track(obs::stream_track(ref.id), "stream " + std::to_string(ref.id));
    tracer_->instant(obs::kSchedulerTrack, "scheduler", "stream_created", sim_.now(),
                     "stream", static_cast<double>(ref.id));
  }
  LogMessage(LogLevel::kDebug, kLog, sim_.now())
      << "stream " << ref.id << " created on dev " << device << " at " << range_start;
  return ref;
}

Stream& StreamScheduler::stream_ref(StreamId id) {
  const auto it = streams_.find(id);
  assert(it != streams_.end());
  return *it->second;
}

const Stream* StreamScheduler::stream_by_id(StreamId id) const {
  const auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : it->second.get();
}

std::size_t StreamScheduler::buffered_count() const {
#ifndef NDEBUG
  std::size_t n = 0;
  for (const auto& [id, s] : streams_) {
    if (StagingArea::counts_as_buffered(*s)) ++n;
  }
  assert(n == staging_.buffered_count() && "buffered-set counter out of sync");
#endif
  return staging_.buffered_count();
}

void StreamScheduler::enqueue(Stream& stream, ClientRequest request) {
  assert(request.device == stream.device);
  assert(request.op == IoOp::kRead && "writes take the direct path in the server");
  if (device_failed(stream.device)) {
    // Fail fast: the retry hierarchy already exhausted itself against this
    // device; queueing more work would only stall the client.
    fail_request(request, IoStatus::kDeviceFailed);
    return;
  }
  stream.last_activity = sim_.now();
  ++stream.stats.client_requests;

  // 1. Already staged? Serve immediately (a buffered-set or dispatch-set hit).
  if (StagingArea::covers(stream.buffers, request.offset, request.length,
                          /*filled_only=*/true)) {
    ++stream.stats.buffer_hits;
    ++stats_.buffer_hits;
    serve_request(stream, std::move(request));
    reap_buffers(stream);  // frees memory; may unblock stalled dispatches
    return;
  }

  // 2. Covered by in-flight read-ahead, or starting at/after the prefetch
  //    cursor: park it; it completes when data lands. A request merely
  //    *straddling* the cursor would never be fully covered by future
  //    read-ahead, so it must not be parked (it falls through to 3).
  const bool inflight_covers = StagingArea::covers(stream.buffers, request.offset,
                                                   request.length, /*filled_only=*/false);
  const bool ahead = request.offset >= stream.prefetch_pos;
  if (inflight_covers || (ahead && !stream.at_device_end)) {
    request.arrival = sim_.now();  // parking time governs escalation
    PendingRequest* const node = request_slab_.acquire(std::move(request));
    // Sorted insert by offset; closed-loop arrivals are nearly in order, so
    // scanning from the tail is O(1) amortized.
    PendingRequest* pos = stream.pending.back();
    while (pos != nullptr && pos->req.offset > node->req.offset) {
      pos = PendingList::prev_of(*pos);
    }
    if (pos == nullptr) {
      stream.pending.push_front(*node);
    } else {
      stream.pending.insert_after(*pos, *node);
    }
    if (!inflight_covers) make_candidate(stream);
    pump();
    return;
  }

  // 3. Behind the prefetch cursor with no staged copy (reclaimed by GC, or
  //    past the device end): fall back to a direct device read. A streak of
  //    consecutive sequential fallbacks means the client rewound (e.g.
  //    looped playout) — re-aim the prefetch cursor at the new position.
  ++stats_.fallback_direct_reads;
  if (request.offset == stream.last_fallback_end) {
    ++stream.fallback_streak;
  } else {
    stream.fallback_streak = 1;
  }
  stream.last_fallback_end = request.offset + request.length;
  if (stream.fallback_streak >= 3) {
    stream.fallback_streak = 0;
    stream.prefetch_pos = stream.last_fallback_end;
    stream.served_upto = stream.last_fallback_end;
    stream.at_device_end = false;
  }
  blockdev::BlockRequest direct;
  direct.offset = request.offset;
  direct.length = request.length;
  direct.op = IoOp::kRead;
  direct.id = request.id;
  direct.data = request.data;
  direct.on_complete = std::move(request.on_complete);
  devices_[stream.device]->submit(std::move(direct));
}

void StreamScheduler::make_candidate(Stream& stream) {
  if (stream.state == StreamState::kDispatched || stream.state == StreamState::kCandidate) {
    return;
  }
  const bool was = StagingArea::counts_as_buffered(stream);
  stream.state = StreamState::kCandidate;
  staging_.note_buffered(stream, was);
  dispatch_.push_back(stream);
}

void StreamScheduler::pump() {
  const std::uint32_t slots = params_.effective_dispatch_size();
  while (dispatch_.has_free_slot(slots) && dispatch_.has_candidates()) {
    if (!dispatch(dispatch_.pop_next())) {
      // Dispatch bounced on memory; retry later when buffers free up.
      break;
    }
  }
}

bool StreamScheduler::dispatch(Stream& stream) {
  assert(stream.state == StreamState::kCandidate);
  stream.state = StreamState::kDispatched;
  dispatch_.begin_residency();
  stream.issued_in_residency = 0;
  ++stream.stats.residencies;
  stream.dispatched_at = sim_.now();
  return issue_next(stream);
}

bool StreamScheduler::issue_next(Stream& stream) {
  assert(stream.state == StreamState::kDispatched);
  if (stream.issued_in_residency >= params_.requests_per_residency) {
    rotate_out(stream);
    return true;
  }
  const Bytes capacity = devices_[stream.device]->capacity();
  if (stream.prefetch_pos >= capacity) {
    stream.at_device_end = true;
    rotate_out(stream);
    return true;
  }
  const Bytes len = std::min<Bytes>(params_.read_ahead, capacity - stream.prefetch_pos);

  IoBuffer* raw = staging_.stage(stream, stream.prefetch_pos, len, sim_.now());
  if (raw == nullptr) {
    ++stats_.dispatch_stalls;
    if (tracer_ != nullptr) {
      tracer_->instant(obs::kSchedulerTrack, "scheduler", "dispatch_stall", sim_.now(),
                       "stream", static_cast<double>(stream.id));
    }
    const bool first_issue = stream.issued_in_residency == 0;
    // Leave the dispatch set; on a first-issue bounce go back to the head
    // of the candidate queue and stall the pump until memory frees.
    dispatch_.end_residency();
    ++stats_.rotations;
    stream.state = StreamState::kCandidate;
    if (first_issue) {
      dispatch_.push_front(stream);
    } else {
      dispatch_.push_back(stream);
    }
    return false;
  }

  const ByteOffset issue_offset = stream.prefetch_pos;
  stream.prefetch_pos += len;
  ++stream.issued_in_residency;
  ++stream.inflight;
  ++stream.stats.disk_reads;
  stream.stats.bytes_prefetched += len;
  ++stats_.disk_reads;
  stats_.bytes_prefetched += len;
  dispatch_.note_issue(stream.device, issue_offset + len);

  const StreamId sid = stream.id;
  const std::uint32_t dev = stream.device;
  cpu_.execute(cpu_.issue_cost(staging_.live_buffers()), [this, sid, dev, issue_offset,
                                                          len, data = raw->data()]() {
    blockdev::BlockRequest req;
    req.offset = issue_offset;
    req.length = len;
    req.op = IoOp::kRead;
    req.data = data;
    req.on_complete = [this, sid, issue_offset,
                       issued_at = sim_.now()](SimTime, IoStatus status) {
      on_read_complete(sid, issue_offset, issued_at, status);
    };
    devices_[dev]->submit(std::move(req));
  });
  return true;
}

void StreamScheduler::rotate_out(Stream& stream) {
  assert(stream.state == StreamState::kDispatched);
  dispatch_.end_residency();
  ++stats_.rotations;
  if (tracer_ != nullptr) {
    tracer_->complete(obs::stream_track(stream.id), "scheduler", "residency",
                      stream.dispatched_at, sim_.now(), "issued",
                      static_cast<double>(stream.issued_in_residency));
    tracer_->instant(obs::kSchedulerTrack, "scheduler", "rotation", sim_.now(), "stream",
                     static_cast<double>(stream.id));
  }
  // Streams with unmet demand re-enter the candidate queue (round-robin
  // tail); satisfied streams park in the buffered set.
  const bool unmet = std::any_of(
      stream.pending.begin(), stream.pending.end(), [&stream](const PendingRequest& p) {
        return !StagingArea::covers(stream.buffers, p.req.offset, p.req.length,
                                    /*filled_only=*/false);
      });
  if (unmet && !stream.at_device_end) {
    stream.state = StreamState::kCandidate;
    dispatch_.push_back(stream);
  } else {
    stream.state = StreamState::kBuffered;
    staging_.note_buffered(stream, /*was=*/false);  // was kDispatched
  }
}

void StreamScheduler::on_read_complete(StreamId stream_id, ByteOffset buffer_offset,
                                       SimTime issued_at, IoStatus status) {
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    // Completion for a stream already evicted and retired.
    pump();
    return;
  }
  Stream* stream = it->second.get();
  assert(stream->inflight > 0);
  --stream->inflight;

  if (!io_ok(status)) {
    ++stats_.prefetch_errors;
    if (tracer_ != nullptr) {
      tracer_->instant(obs::kSchedulerTrack, "scheduler", "prefetch_error", sim_.now(),
                       "device", static_cast<double>(stream->device));
    }
    // The failed read-ahead's buffer never received data; drop it. The
    // completion being delivered guarantees nothing below will write into
    // it anymore (ReliableDevice bounces abandoned attempts).
    staging_.drop_unfilled(*stream, buffer_offset);
    const std::uint32_t dev = stream->device;
    note_device_error(dev, status);  // may evict and retire `stream`
    const auto again = streams_.find(stream_id);
    if (again == streams_.end()) {
      pump();
      return;
    }
    stream = again->second.get();
  } else if (tracer_ != nullptr) {
    // Stage span: device submit -> data staged in the buffer pool. Emitted
    // as a complete ('X') event because stage spans from consecutive
    // residencies may overlap, which 'B'/'E' pairs cannot express.
    tracer_->complete(obs::stream_track(stream_id), "scheduler", "prefetch", issued_at,
                      sim_.now(), "offset_mb",
                      static_cast<double>(buffer_offset) / static_cast<double>(MiB));
  }

  if (stream->evicted) {
    // Zombie: parked only until in-flight completions drain.
    if (stream->inflight == 0) {
      staging_.release_all(*stream);
      retire_stream(stream_id);
    }
    pump();
    return;
  }

  if (io_ok(status)) {
    staging_.mark_filled(*stream, buffer_offset, sim_.now());
  }

  // Issue path first (paper §4.2): keep the disks fed before unwinding
  // completions.
  if (stream->state == StreamState::kDispatched) {
    issue_next(*stream);
  }
  pump();

  drain_pending(*stream);
  reap_buffers(*stream);
}

void StreamScheduler::note_device_error(std::uint32_t device, IoStatus status) {
  assert(device < device_errors_.size());
  if (device_errors_[device] >= params_.device_fail_threshold) return;  // known bad
  if (++device_errors_[device] < params_.device_fail_threshold) return;

  // The device just crossed the failure threshold: evict every stream bound
  // to it so healthy streams keep their dispatch slots and throughput
  // instead of the pump stalling behind a dead disk.
  LogMessage(LogLevel::kWarn, kLog, sim_.now())
      << "device " << device << " declared failed (" << to_string(status) << ")";
  if (tracer_ != nullptr) {
    tracer_->instant(obs::kSchedulerTrack, "scheduler", "device_failed", sim_.now(),
                     "device", static_cast<double>(device));
  }
  if (flight_ != nullptr) {
    flight_->record(obs::FlightCode::kDeviceFailed, sim_.now(), 0, device,
                    static_cast<std::uint64_t>(status));
  }
  std::vector<StreamId> victims;
  for (const auto& [id, s] : streams_) {
    if (s->device == device && !s->evicted) victims.push_back(id);
  }
  for (const StreamId id : victims) {
    const auto it = streams_.find(id);
    if (it != streams_.end()) evict_stream(*it->second, status);
  }
  pump();  // freed slots refill with streams on healthy devices
}

std::size_t StreamScheduler::failed_device_count() const {
  std::size_t n = 0;
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    if (device_failed(d)) ++n;
  }
  return n;
}

void StreamScheduler::fail_request(ClientRequest& request, IoStatus status) {
  ++stats_.requests_failed;
  if (flight_ != nullptr) {
    flight_->record(obs::FlightCode::kRequestFailed, sim_.now(),
                    request.trace != nullptr ? request.trace->rid : 0, request.device,
                    static_cast<std::uint64_t>(status));
  }
  if (request.on_complete) request.on_complete(sim_.now(), status);
}

void StreamScheduler::evict_stream(Stream& stream, IoStatus status) {
  if (stream.evicted) return;
  const bool was = StagingArea::counts_as_buffered(stream);
  if (stream.state == StreamState::kDispatched) {
    dispatch_.end_residency();
  } else if (stream.state == StreamState::kCandidate) {
    dispatch_.remove(stream);
  }
  stream.state = StreamState::kIdle;
  stream.evicted = true;
  staging_.note_buffered(stream, was);
  ++stats_.streams_evicted;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::kSchedulerTrack, "scheduler", "stream_evicted", sim_.now(),
                     "stream", static_cast<double>(stream.id));
  }
  if (flight_ != nullptr) {
    flight_->record(obs::FlightCode::kStreamEvicted, sim_.now(), 0, stream.device,
                    stream.id);
  }
  LogMessage(LogLevel::kWarn, kLog, sim_.now())
      << "stream " << stream.id << " evicted from dev " << stream.device << " ("
      << to_string(status) << ")";

  // Queued client requests will never be served from this stream: fail them
  // now rather than let them stall until the pending timeout.
  while (PendingRequest* node = stream.pending.pop_front()) {
    fail_request(node->req, status);
    request_slab_.release(node);
  }

  // Unclaim the range so fresh requests never match the zombie.
  index_.unclaim(stream.device, stream.range_start, stream.id);

  if (stream.inflight == 0) {
    // No completion can write into staged memory anymore: release it all.
    staging_.release_all(stream);
    retire_stream(stream.id);
    return;
  }
  // In-flight reads still hold pointers into unfilled materialized buffers;
  // those must survive until their completions drain (hung commands under a
  // disabled retry layer never complete — the zombie then lives until the
  // scheduler is torn down, which is bounded and harmless). Timing-only and
  // already-filled buffers carry no future writes and are freed now.
  staging_.drop_inert_buffers(stream);
}

void StreamScheduler::drain_pending(Stream& stream) {
  PendingRequest* node = stream.pending.front();
  while (node != nullptr) {
    PendingRequest* const next = PendingList::next_of(*node);
    if (StagingArea::covers(stream.buffers, node->req.offset, node->req.length,
                            /*filled_only=*/true)) {
      stream.pending.remove(*node);
      ClientRequest req = std::move(node->req);
      request_slab_.release(node);
      serve_request(stream, std::move(req));
    }
    node = next;
  }
}

void StreamScheduler::serve_request(Stream& stream, ClientRequest request) {
  if (request.trace != nullptr) request.trace->serve = sim_.now();
  staging_.consume(stream, request.offset, request.length, request.data, sim_.now(),
                   request.on_data, request.trace);
  const ByteOffset req_end = request.offset + request.length;
  if (req_end > stream.served_upto) stream.served_upto = req_end;
  stream.stats.bytes_served += request.length;
  stats_.bytes_served += request.length;
  ++stats_.client_completions;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::stream_track(stream.id), "scheduler", "serve", sim_.now(),
                     "bytes", static_cast<double>(request.length));
  }
  if (flight_ != nullptr) {
    flight_->record(obs::FlightCode::kServe, sim_.now(),
                    request.trace != nullptr ? request.trace->rid : 0, stream.device,
                    request.length);
  }

  cpu_.execute(cpu_.complete_cost(staging_.live_buffers()),
               [cb = std::move(request.on_complete), this]() {
                 if (cb) cb(sim_.now());
               });
}

void StreamScheduler::reap_buffers(Stream& stream) {
  staging_.reap(stream);
  // Memory freed: streams stalled on allocation may proceed now.
  if (dispatch_.has_candidates()) pump();
}

void StreamScheduler::collect_garbage() {
  const SimTime now = sim_.now();
  const SimTime buffer_horizon =
      now > params_.buffer_timeout ? now - params_.buffer_timeout : 0;
  const SimTime stream_horizon =
      now > params_.stream_timeout ? now - params_.stream_timeout : 0;
  const SimTime pending_horizon =
      now > params_.pending_timeout ? now - params_.pending_timeout : 0;

  const std::uint64_t reclaimed_before = stats_.gc_buffers_reclaimed;
  std::vector<StreamId> dead;
  for (auto& [id, stream] : streams_) {
    // Escalate starved parked requests: under memory pressure a request
    // straddling a reclaimed/never-staged range would otherwise wait
    // forever (the cursor only moves forward). Anything parked longer than
    // the buffer timeout goes to the device directly.
    PendingRequest* node = stream->pending.front();
    while (node != nullptr) {
      PendingRequest* const next = PendingList::next_of(*node);
      if (node->req.arrival < pending_horizon) {
        stream->pending.remove(*node);
        ClientRequest req = std::move(node->req);
        request_slab_.release(node);
        ++stats_.fallback_direct_reads;
        ++stats_.escalated_reads;
        if (tracer_ != nullptr) {
          tracer_->instant(obs::kSchedulerTrack, "scheduler", "escalated_read",
                           sim_.now(), "stream", static_cast<double>(stream->id));
        }
        blockdev::BlockRequest direct;
        direct.offset = req.offset;
        direct.length = req.length;
        direct.op = IoOp::kRead;
        direct.id = req.id;
        direct.data = req.data;
        direct.on_complete = std::move(req.on_complete);
        devices_[stream->device]->submit(std::move(direct));
      }
      node = next;
    }
    const StagingArea::ReclaimResult reclaimed =
        staging_.reclaim_expired(*stream, buffer_horizon);
    stats_.gc_buffers_reclaimed += reclaimed.buffers_reclaimed;
    stats_.gc_bytes_wasted += reclaimed.bytes_wasted;
    const bool inert = stream->state == StreamState::kIdle ||
                       stream->state == StreamState::kBuffered;
    if (inert && stream->inflight == 0 && stream->pending.empty() &&
        stream->buffers.empty() && stream->last_activity < stream_horizon) {
      dead.push_back(id);
    }
  }
  for (const StreamId id : dead) {
    ++stats_.gc_streams_retired;
    retire_stream(id);
  }
  if (tracer_ != nullptr && stats_.gc_buffers_reclaimed > reclaimed_before) {
    tracer_->instant(
        obs::kSchedulerTrack, "scheduler", "gc_reclaim", sim_.now(), "buffers",
        static_cast<double>(stats_.gc_buffers_reclaimed - reclaimed_before));
  }
  if (dispatch_.has_candidates()) pump();
}

void StreamScheduler::retire_stream(StreamId id) {
  const auto it = streams_.find(id);
  if (it == streams_.end()) return;
  Stream& s = *it->second;
  assert(s.inflight == 0 && s.pending.empty());
  staging_.on_retire(s);
  index_.unclaim(s.device, s.range_start, id);
  streams_.erase(it);
  ++stats_.streams_retired;
}

}  // namespace sst::core
