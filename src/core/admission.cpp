#include "core/admission.hpp"

#include <algorithm>
#include <sstream>

namespace sst::core {

double effective_throughput_bps(double seq_rate_bps, SimTime position_time,
                                Bytes read_ahead) {
  if (read_ahead == 0 || seq_rate_bps <= 0.0) return 0.0;
  const double xfer_s = static_cast<double>(read_ahead) / seq_rate_bps;
  const double cycle_s = to_seconds(position_time) + xfer_s;
  return static_cast<double>(read_ahead) / cycle_s;
}

AdmissionPlan plan_admission(const AdmissionRequest& request) {
  AdmissionPlan plan;
  const NodeDescription& node = request.node;

  // Pick R: caller's choice, or autotune's efficiency-targeted size.
  const TuningResult tuned = autotune(node);
  plan.read_ahead = request.read_ahead != 0 ? request.read_ahead : tuned.params.read_ahead;

  plan.effective_disk_bps =
      effective_throughput_bps(node.disk_seq_rate_bps, node.avg_position_time,
                               plan.read_ahead);
  if (request.stream_rate_bps > 0.0) {
    plan.streams_per_disk = static_cast<std::uint32_t>(
        plan.effective_disk_bps / request.stream_rate_bps);
  }
  plan.streams_disk_bound = plan.streams_per_disk * node.num_disks;

  // Memory: on average every admitted stream keeps one R-sized buffer
  // staged (dispatch working set plus buffered-set residue).
  plan.streams_memory_bound = static_cast<std::uint32_t>(
      plan.read_ahead ? node.host_memory / plan.read_ahead : 0);

  plan.admissible_streams = std::min(plan.streams_disk_bound, plan.streams_memory_bound);

  plan.scheduler = tuned.params;
  plan.scheduler.read_ahead = plan.read_ahead;
  // Short residencies suit paced consumers: each visit stages a bounded
  // amount, and the round-robin returns before the playout buffer drains.
  plan.scheduler.requests_per_residency =
      std::min<std::uint32_t>(plan.scheduler.requests_per_residency, 4);
  plan.scheduler.memory_budget = node.host_memory;
  plan.scheduler.dispatch_set_size = std::max<std::uint32_t>(1, node.num_disks);

  std::ostringstream why;
  why << "T_eff=" << plan.effective_disk_bps / 1e6 << "MB/s at R=" << plan.read_ahead / KiB
      << "K -> " << plan.streams_per_disk << " streams/disk x " << node.num_disks
      << " disks = " << plan.streams_disk_bound << "; memory caps at "
      << plan.streams_memory_bound << " -> admit " << plan.admissible_streams;
  plan.rationale = why.str();
  return plan;
}

}  // namespace sst::core
