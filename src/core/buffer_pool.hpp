// Bounded pool of I/O buffers backing the dispatch and buffered sets
// (paper §4.2-4.3). The pool enforces the memory budget M: allocation fails
// once the budget is committed, which is precisely what bounds the dispatch
// set when D is not set explicitly.
//
// Buffers optionally carry real memory (materialize=true) so devices can
// fill them and tests can verify data integrity end to end; benches skip
// the allocation and model accounting only. Materialized memory comes from
// a refcounted ExtentSlab: clients can hold StagedSlice references into an
// extent after the IoBuffer that staged it is reaped, and recycled extents
// make steady-state staging allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/extent_slab.hpp"
#include "common/types.hpp"

namespace sst::core {

class BufferPool;

/// A borrowed view of staged data handed to a client instead of a copy.
/// `extent` shares ownership of the backing memory: the view stays valid —
/// even after the staging buffer is reaped — until the slice is dropped.
struct StagedSlice {
  ByteOffset offset = 0;  ///< device offset this slice begins at
  const std::byte* data = nullptr;
  Bytes length = 0;
  ExtentRef extent;
};

/// Per-request data sink: receives one StagedSlice per staged extent the
/// request's range touches, in offset order. The slices borrow the staged
/// memory by reference (no copy); holding the slice keeps it alive.
using DataSink = std::function<void(StagedSlice)>;

/// One staged read-ahead extent: [offset, offset + valid) of a device.
class IoBuffer {
 public:
  ~IoBuffer();
  IoBuffer(const IoBuffer&) = delete;
  IoBuffer& operator=(const IoBuffer&) = delete;

  /// IoBuffers churn once per staged extent; their storage is recycled
  /// through a thread-local free list so steady-state staging never touches
  /// the heap (experiments run whole on one thread, so thread-local pools
  /// see matching new/delete pairs).
  static void* operator new(std::size_t size);
  static void operator delete(void* p) noexcept;

  [[nodiscard]] std::uint32_t device() const { return device_; }
  [[nodiscard]] ByteOffset offset() const { return offset_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  /// Bytes actually filled by the device (== capacity once the read lands).
  [[nodiscard]] Bytes valid() const { return valid_; }
  [[nodiscard]] bool filled() const { return valid_ > 0; }
  [[nodiscard]] ByteOffset end() const { return offset_ + valid_; }

  /// Backing memory, or nullptr when the pool does not materialize.
  [[nodiscard]] std::byte* data() { return extent_.data(); }
  [[nodiscard]] const std::byte* data() const { return extent_.data(); }
  /// Share the backing extent (bumps the refcount; empty when unmaterialized).
  [[nodiscard]] ExtentRef extent() const { return extent_; }

  /// Contains the whole byte range?
  [[nodiscard]] bool contains(ByteOffset off, Bytes len) const {
    return filled() && off >= offset_ && off + len <= end();
  }

  void mark_filled(Bytes valid, SimTime when) {
    valid_ = valid;
    filled_at_ = when;
    last_touch_ = when;
  }

  /// Record that [off, off+len) was served to a client.
  void consume(ByteOffset off, Bytes len, SimTime when) {
    const ByteOffset rel_end = off + len - offset_;
    if (rel_end > consumed_upto_) consumed_upto_ = rel_end;
    last_touch_ = when;
  }

  /// Fully consumed = every byte up to valid() served at least once
  /// (streams are sequential, so a high-water mark suffices).
  [[nodiscard]] bool fully_consumed() const { return filled() && consumed_upto_ >= valid_; }
  [[nodiscard]] Bytes consumed_upto() const { return consumed_upto_; }
  [[nodiscard]] SimTime last_touch() const { return last_touch_; }

 private:
  friend class BufferPool;
  IoBuffer(BufferPool& pool, std::uint32_t device, ByteOffset offset, Bytes capacity,
           ExtentRef extent, SimTime now);

  BufferPool& pool_;
  std::uint32_t device_;
  ByteOffset offset_;
  Bytes capacity_;
  Bytes valid_ = 0;
  Bytes consumed_upto_ = 0;
  SimTime filled_at_ = 0;
  SimTime last_touch_ = 0;
  ExtentRef extent_;
};

struct BufferPoolStats {
  std::uint64_t allocations = 0;
  std::uint64_t allocation_failures = 0;
  std::uint64_t releases = 0;
  Bytes peak_committed = 0;
};

class BufferPool {
 public:
  BufferPool(Bytes budget, bool materialize);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocate a buffer of `capacity` bytes for `[offset, ...)` of `device`;
  /// nullptr when the budget would be exceeded.
  [[nodiscard]] std::unique_ptr<IoBuffer> allocate(std::uint32_t device, ByteOffset offset,
                                                   Bytes capacity, SimTime now);

  [[nodiscard]] Bytes budget() const { return budget_; }
  [[nodiscard]] Bytes committed() const { return committed_; }
  [[nodiscard]] Bytes available() const { return budget_ - committed_; }
  [[nodiscard]] std::size_t live_buffers() const { return live_buffers_; }
  [[nodiscard]] const BufferPoolStats& stats() const { return stats_; }
  /// Backing extent allocator (empty stats when not materializing).
  [[nodiscard]] const ExtentSlab& extent_slab() const { return extents_; }

 private:
  friend class IoBuffer;
  void release(Bytes capacity);

  Bytes budget_;
  bool materialize_;
  Bytes committed_ = 0;
  std::size_t live_buffers_ = 0;
  ExtentSlab extents_;
  BufferPoolStats stats_;
};

}  // namespace sst::core
