#include "exec/real_context.hpp"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <thread>

namespace sst::exec {

namespace {

/// Safety ceiling on any single blocking wait. Completion wakeups are
/// event-driven (eventfd / in-ring), so this never fires on the hot path;
/// it bounds the damage of a lost-wakeup bug to a 1 Hz retry instead of a
/// hang.
constexpr SimTime kMaxBlock = sec(1);

}  // namespace

RealContext::RealContext() : epoch_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  if (epoll_fd_ >= 0 && timer_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr tags the deadline timer
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) != 0) {
      ::close(timer_fd_);
      timer_fd_ = -1;
    }
  }
}

RealContext::~RealContext() {
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SimTime RealContext::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

std::uint32_t RealContext::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void RealContext::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.alive = false;
  ++slot.generation;  // invalidates outstanding handles and heap records
  slot.next_free = free_head_;
  free_head_ = index;
}

TaskHandle RealContext::schedule_at(SimTime when, TaskFn fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.alive = true;
  ++live_;
  const std::uint32_t generation = slot.generation;
  queue_.push(HeapEntry{when, next_seq_++, index, generation});
  return make_handle(index, generation);
}

bool RealContext::task_pending(std::uint32_t slot, std::uint32_t generation) const {
  return slot < slots_.size() && slots_[slot].generation == generation &&
         slots_[slot].alive;
}

void RealContext::cancel_task(std::uint32_t slot, std::uint32_t generation) {
  if (!task_pending(slot, generation)) return;
  --live_;
  release_slot(slot);  // the heap record goes stale and is purged lazily
}

void RealContext::purge_dead_tops() {
  while (!queue_.empty() &&
         slots_[queue_.top().slot].generation != queue_.top().generation) {
    queue_.pop();
  }
}

std::size_t RealContext::fire_due() {
  std::size_t fired = 0;
  for (;;) {
    purge_dead_tops();
    if (queue_.empty() || queue_.top().when > now()) return fired;
    const HeapEntry top = queue_.top();
    queue_.pop();
    Slot& slot = slots_[top.slot];
    TaskFn fn = std::move(slot.fn);
    --live_;
    release_slot(top.slot);  // recycle before invoking: fn may schedule again
    ++executed_;
    fn();
    ++fired;
  }
}

std::size_t RealContext::total_in_flight() const {
  std::size_t total = 0;
  for (const CompletionDriver* driver : drivers_) total += driver->in_flight();
  return total;
}

void RealContext::drain_event_fd(int fd) {
  std::uint64_t count = 0;
  // Non-blocking eventfd semantics: one read returns (and resets) the
  // whole counter; EAGAIN just means nothing was pending.
  [[maybe_unused]] const ssize_t rc = ::read(fd, &count, sizeof(count));
}

void RealContext::wait_multiplexed(SimTime max_wait) {
  // Arm the deadline (relative, capped by the safety ceiling) and block in
  // one epoll_wait over every ring eventfd plus the timerfd — no
  // starvation, no polling nap: the first completion on any ring wakes us.
  const SimTime deadline = std::min(max_wait, kMaxBlock);
  itimerspec spec{};
  spec.it_value.tv_sec = static_cast<time_t>(deadline / 1'000'000'000ULL);
  spec.it_value.tv_nsec = static_cast<long>(deadline % 1'000'000'000ULL);
  if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
    spec.it_value.tv_nsec = 1;  // "now", but still a valid one-shot arm
  }
  ::timerfd_settime(timer_fd_, 0, &spec, nullptr);

  epoll_event events[16];
  int ready;
  do {
    ready = ::epoll_wait(epoll_fd_, events,
                         static_cast<int>(std::size(events)), -1);
  } while (ready < 0 && errno == EINTR);
  ++stats_.wakeups;
  ++stats_.epoll_waits;
  if (ready < 0) return;

  bool deadline_fired = false;
  std::size_t delivered = 0;
  for (int i = 0; i < ready; ++i) {
    if (events[i].data.ptr == nullptr) {
      drain_event_fd(timer_fd_);
      deadline_fired = true;
      continue;
    }
    auto* driver = static_cast<CompletionDriver*>(events[i].data.ptr);
    drain_event_fd(driver->event_fd());
    delivered += driver->poll(0);
  }
  stats_.completions += delivered;
  if (delivered > 0) {
    ++stats_.completion_wakeups;
  } else if (deadline_fired) {
    ++stats_.timer_wakeups;
  } else {
    ++stats_.spurious_wakeups;
  }
}

void RealContext::wait_for_work(SimTime max_wait) {
  // Non-blocking sweep over every busy driver: reap already-posted
  // completions without a syscall. Staged SQEs deliberately stay local
  // through the sweep — they are pushed at the last moment before any
  // blocking decision, so completion callbacks that submit during the
  // sweep coalesce into one larger batch. (Staged work always lives on a
  // busy driver: staging implies an in-flight pending entry.)
  std::size_t delivered = 0;
  std::size_t busy = 0;
  CompletionDriver* sole = nullptr;
  bool all_multiplexed = epoll_fd_ >= 0 && timer_fd_ >= 0;
  for (CompletionDriver* driver : drivers_) {
    if (driver->in_flight() == 0) continue;
    ++busy;
    if (sole == nullptr) sole = driver;
    const int efd = driver->event_fd();
    if (efd >= 0) {
      drain_event_fd(efd);  // keep the edge clean for the next epoll round
    } else {
      all_multiplexed = false;
    }
    delivered += driver->poll(0);
  }
  stats_.completions += delivered;
  if (delivered > 0 || max_wait == 0) return;

  if (busy == 0) {
    // No I/O outstanding: completions cannot arrive (submissions only
    // happen from this thread), so a plain sleep until the next timer is
    // exact — no responsive-floor spin.
    ++stats_.wakeups;
    ++stats_.idle_sleeps;
    ++stats_.timer_wakeups;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(std::min(max_wait, kMaxBlock)));
    return;
  }

  if (busy == 1 && (sole->event_fd() < 0 || !all_multiplexed)) {
    // One busy ring without an eventfd: block inside it. The driver
    // combines its staged submissions with the completion wait in a single
    // io_uring_enter, so the steady-state single-device hot path costs ~1
    // syscall per batch. (Eventfd-backed rings prefer the epoll path below
    // even when alone: timer-dense workloads would otherwise pay a
    // wait-only enter per wakeup, and completions reach epoll anyway.)
    ++stats_.wakeups;
    ++stats_.inring_waits;
    const SimTime target = now() + max_wait;
    const std::size_t n = sole->poll(std::min(max_wait, kMaxBlock));
    stats_.completions += n;
    if (n > 0) {
      ++stats_.completion_wakeups;
    } else if (now() >= target) {
      ++stats_.timer_wakeups;
    } else {
      ++stats_.spurious_wakeups;
    }
    return;
  }

  // Several busy rings: the wait happens outside any single ring, so every
  // ring's staged batch must be pushed first (one enter per ring holding
  // work) before blocking.
  for (CompletionDriver* driver : drivers_) driver->flush();

  if (all_multiplexed) {
    wait_multiplexed(max_wait);
    return;
  }

  // Fallback for drivers without an eventfd among several busy ones:
  // block briefly in the first busy ring, then resweep — the pre-epoll
  // discipline, kept only for foreign CompletionDriver implementations.
  ++stats_.wakeups;
  ++stats_.inring_waits;
  std::size_t n = sole->poll(std::min<SimTime>(max_wait, msec(1)));
  for (CompletionDriver* driver : drivers_) {
    if (driver != sole && driver->in_flight() > 0) n += driver->poll(0);
  }
  stats_.completions += n;
  if (n > 0) {
    ++stats_.completion_wakeups;
  } else {
    ++stats_.timer_wakeups;
  }
}

void RealContext::add_driver(CompletionDriver* driver) {
  drivers_.push_back(driver);
  const int efd = driver->event_fd();
  if (efd >= 0 && epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = driver;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, efd, &ev);
  }
}

void RealContext::remove_driver(CompletionDriver* driver) {
  const int efd = driver->event_fd();
  if (efd >= 0 && epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, efd, nullptr);
  }
  drivers_.erase(std::remove(drivers_.begin(), drivers_.end(), driver),
                 drivers_.end());
}

void RealContext::run_until(SimTime deadline) {
  for (;;) {
    fire_due();
    const SimTime t = now();
    if (t >= deadline) return;
    purge_dead_tops();
    const SimTime next = queue_.empty() ? kSimTimeMax : queue_.top().when;
    const SimTime target = std::min(deadline, next);
    wait_for_work(target > t ? target - t : 0);
  }
}

void RealContext::run() {
  for (;;) {
    fire_due();
    if (live_ == 0 && total_in_flight() == 0) return;
    purge_dead_tops();
    const SimTime t = now();
    // Sleep exactly until the next timer; in-flight I/O wakes the reactor
    // through the event path, so no responsive floor is needed. With I/O
    // pending and no timers at all, the safety ceiling bounds the block.
    SimTime wait = kMaxBlock;
    if (!queue_.empty()) {
      wait = queue_.top().when > t ? queue_.top().when - t : 0;
    }
    wait_for_work(wait);
  }
}

}  // namespace sst::exec
