#include "exec/real_context.hpp"

#include <algorithm>
#include <thread>

namespace sst::exec {

RealContext::RealContext() : epoch_(std::chrono::steady_clock::now()) {}

SimTime RealContext::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

std::uint32_t RealContext::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void RealContext::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.alive = false;
  ++slot.generation;  // invalidates outstanding handles and heap records
  slot.next_free = free_head_;
  free_head_ = index;
}

TaskHandle RealContext::schedule_at(SimTime when, TaskFn fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.alive = true;
  ++live_;
  const std::uint32_t generation = slot.generation;
  queue_.push(HeapEntry{when, next_seq_++, index, generation});
  return make_handle(index, generation);
}

bool RealContext::task_pending(std::uint32_t slot, std::uint32_t generation) const {
  return slot < slots_.size() && slots_[slot].generation == generation &&
         slots_[slot].alive;
}

void RealContext::cancel_task(std::uint32_t slot, std::uint32_t generation) {
  if (!task_pending(slot, generation)) return;
  --live_;
  release_slot(slot);  // the heap record goes stale and is purged lazily
}

void RealContext::purge_dead_tops() {
  while (!queue_.empty() &&
         slots_[queue_.top().slot].generation != queue_.top().generation) {
    queue_.pop();
  }
}

std::size_t RealContext::fire_due() {
  std::size_t fired = 0;
  for (;;) {
    purge_dead_tops();
    if (queue_.empty() || queue_.top().when > now()) return fired;
    const HeapEntry top = queue_.top();
    queue_.pop();
    Slot& slot = slots_[top.slot];
    TaskFn fn = std::move(slot.fn);
    --live_;
    release_slot(top.slot);  // recycle before invoking: fn may schedule again
    ++executed_;
    fn();
    ++fired;
  }
}

std::size_t RealContext::total_in_flight() const {
  std::size_t total = 0;
  for (const CompletionDriver* driver : drivers_) total += driver->in_flight();
  return total;
}

void RealContext::wait_for_work(SimTime max_wait) {
  // Non-blocking sweep over every driver first: with several devices busy,
  // blocking in one ring would starve completions on the others.
  std::size_t delivered = 0;
  std::size_t busy = 0;
  CompletionDriver* block_in = nullptr;
  for (CompletionDriver* driver : drivers_) {
    if (driver->in_flight() == 0) continue;
    ++busy;
    if (block_in == nullptr) block_in = driver;
    delivered += driver->poll(0);
  }
  if (delivered > 0) return;
  if (block_in != nullptr) {
    // Nothing ready anywhere: block in one ring, but with multiple busy
    // drivers cap the nap so the others are swept again promptly.
    block_in->poll(busy > 1 ? std::min<SimTime>(max_wait, msec(1)) : max_wait);
    for (CompletionDriver* driver : drivers_) {
      if (driver != block_in && driver->in_flight() > 0) driver->poll(0);
    }
    return;
  }
  // No I/O outstanding: completions cannot arrive (submissions only happen
  // from this thread), so plain sleep until the next timer is safe.
  if (max_wait > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(max_wait));
}

void RealContext::add_driver(CompletionDriver* driver) { drivers_.push_back(driver); }

void RealContext::remove_driver(CompletionDriver* driver) {
  drivers_.erase(std::remove(drivers_.begin(), drivers_.end(), driver),
                 drivers_.end());
}

void RealContext::run_until(SimTime deadline) {
  for (;;) {
    fire_due();
    const SimTime t = now();
    if (t >= deadline) return;
    purge_dead_tops();
    const SimTime next = queue_.empty() ? kSimTimeMax : queue_.top().when;
    const SimTime target = std::min(deadline, next);
    wait_for_work(target > t ? target - t : 0);
  }
}

void RealContext::run() {
  for (;;) {
    fire_due();
    if (live_ == 0 && total_in_flight() == 0) return;
    purge_dead_tops();
    const SimTime t = now();
    SimTime wait = msec(1);  // responsive floor while I/O is in flight
    if (!queue_.empty() && queue_.top().when > t) {
      wait = std::min(wait, queue_.top().when - t);
    }
    wait_for_work(wait);
  }
}

}  // namespace sst::exec
