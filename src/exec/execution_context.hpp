// Execution-context seam: the clock and deferred-callback service every
// layer above the block-device boundary is written against.
//
// An ExecutionContext provides three things — a now-source, one-shot task
// scheduling at absolute/relative times, and (through the scheduling
// machinery) the thread of control completions are delivered on. The core
// scheduler, staging area, retry/timeout layers, network model, fault
// injector and observability all take an ExecutionContext&, so none of
// them assumes virtual time. Two implementations exist:
//
//  - sim::Simulator (sim/simulator.hpp): the discrete-event engine; `now()`
//    is simulated nanoseconds and tasks are events on the timer wheel.
//    Byte-identical to the pre-seam engine — the class is `final` so direct
//    calls through a Simulator& still devirtualize and inline.
//  - exec::RealContext (exec/real_context.hpp): the wall clock; tasks run
//    from a reactor loop that also polls CompletionDrivers (the io_uring
//    backend) for real I/O completions.
#pragma once

#include <cstdint>
#include <utility>

#include "common/types.hpp"
#include "exec/task_fn.hpp"

namespace sst::exec {

class ExecutionContext;

/// Handle used to cancel a scheduled task. Handles are small value types
/// addressing a context-owned slot by generation, so they stay safely inert
/// after the task fires or is cancelled (the slot's generation moves on).
/// The handle must not outlive the context itself.
class TaskHandle {
 public:
  TaskHandle() = default;

  /// True while the task has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

  void cancel();

 private:
  friend class ExecutionContext;
  TaskHandle(ExecutionContext* ctx, std::uint32_t slot, std::uint32_t generation)
      : ctx_(ctx), slot_(slot), generation_(generation) {}

  ExecutionContext* ctx_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;
  virtual ~ExecutionContext() = default;

  /// The context's current time in nanoseconds: simulated time for
  /// sim::Simulator, wall-clock time since construction for RealContext.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedule `fn` to run once at absolute time `when`. Simulated contexts
  /// require `when >= now()`; real contexts clamp past times to "as soon
  /// as the reactor runs".
  virtual TaskHandle schedule_at(SimTime when, TaskFn fn) = 0;

  /// Schedule `fn` to run `delay` nanoseconds from now.
  TaskHandle schedule_after(SimTime delay, TaskFn fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

 protected:
  /// For implementations: mint a handle addressing their (slot, generation)
  /// task records.
  [[nodiscard]] TaskHandle make_handle(std::uint32_t slot, std::uint32_t generation) {
    return {this, slot, generation};
  }

  /// Handle support: true while (slot, generation) names a live task.
  [[nodiscard]] virtual bool task_pending(std::uint32_t slot,
                                          std::uint32_t generation) const = 0;
  virtual void cancel_task(std::uint32_t slot, std::uint32_t generation) = 0;

 private:
  friend class TaskHandle;
};

inline bool TaskHandle::pending() const {
  return ctx_ != nullptr && ctx_->task_pending(slot_, generation_);
}

inline void TaskHandle::cancel() {
  if (ctx_ != nullptr) ctx_->cancel_task(slot_, generation_);
}

}  // namespace sst::exec
