// Type-erased deferred-work callable shared by every execution context.
//
// TaskFn is the unit of scheduling for both the discrete-event simulator
// and the wall-clock RealContext: a move-only `void()` callable with inline
// storage. Closures up to kInlineBytes (covering every callback on the
// simulator's hot paths) live inside the object; larger ones fall back to a
// single heap allocation. The inline/relocate/destroy operations are
// table-driven so moving a TaskFn between slab slots never allocates —
// the zero-steady-state-allocation invariant of the event engine depends
// on it.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sst::exec {

class TaskFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  TaskFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, TaskFn> && std::is_invocable_v<D&>, int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor) — callable adaptor by design
  TaskFn(F&& fn) {
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  TaskFn(TaskFn&& other) noexcept { move_from(other); }
  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;
  ~TaskFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); }};

  void move_from(TaskFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace sst::exec
