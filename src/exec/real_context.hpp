// Wall-clock execution context: the real-I/O counterpart of the simulator.
//
// RealContext runs the same callback graph the simulator runs, but `now()`
// is the monotonic clock (nanoseconds since construction, so time starts at
// zero like a simulation) and scheduled tasks fire from a reactor loop.
// Between due timers the loop drains registered CompletionDrivers — sources
// of asynchronous completions such as the io_uring block device — so I/O
// completions and timer callbacks are delivered on one thread, preserving
// the single-threaded execution model every layer above the block-device
// seam was written against.
//
// The reactor is event-driven, not polling. Each turn it (1) sweeps all
// busy drivers non-blocking — batched devices only write SQEs locally, and
// staged submissions deliberately ride along until a blocking decision so
// completion callbacks coalesce into larger batches — and only when
// nothing was ready (2) blocks: inside the single busy ring (staged
// submissions and the completion wait combined into one io_uring_enter)
// when exactly one eventfd-less driver has I/O in flight, or in one
// epoll_wait over every busy driver's eventfd plus a timerfd armed at the
// timer heap's next deadline otherwise, flushing every driver's staged
// batch first. Idle contexts (no I/O in flight) sleep exactly until the
// next timer. ReactorStats counts wakeups, and classifies them
// (completion / timer / spurious).
//
// Task bookkeeping mirrors the simulator's slab: slots are recycled through
// a free list, handles address (slot, generation), and cancelled heap
// records are purged lazily when they surface.
#pragma once

#include <chrono>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "exec/execution_context.hpp"

namespace sst::exec {

/// A pollable source of asynchronous completions (an io_uring reactor, an
/// eventfd, ...). RealContext drains drivers between timer callbacks.
class CompletionDriver {
 public:
  virtual ~CompletionDriver() = default;

  /// Deliver ready completions, blocking up to `max_wait` nanoseconds when
  /// none are ready yet. Returns the number of completions delivered.
  /// Blocking implementations should flush staged submissions first (and
  /// ideally combine the flush with the wait in one syscall).
  virtual std::size_t poll(SimTime max_wait) = 0;

  /// Operations submitted and not yet completed.
  [[nodiscard]] virtual std::size_t in_flight() const = 0;

  /// Push locally staged submissions toward the kernel. Batched drivers
  /// override this; the default no-op suits drivers that submit eagerly.
  /// Implementations may hold small batches back while enough of their own
  /// work remains in flight (plugging), but must guarantee forward
  /// progress: never return with work staged and nothing in flight.
  /// Returns the number of submissions flushed.
  virtual std::size_t flush() { return 0; }

  /// An fd that becomes readable when completions arrive, or -1 when the
  /// driver cannot be multiplexed. The reactor epolls it when several
  /// drivers are busy at once, draining its readability (an 8-byte
  /// eventfd-style read) before calling poll(0).
  [[nodiscard]] virtual int event_fd() const { return -1; }
};

/// Reactor wakeup accounting, exported as the reactor.* metrics group by
/// the real experiment runner.
struct ReactorStats {
  std::uint64_t wakeups = 0;           ///< blocking waits that returned
  std::uint64_t completion_wakeups = 0;///< returned with completions delivered
  std::uint64_t timer_wakeups = 0;     ///< returned at the armed deadline
  std::uint64_t spurious_wakeups = 0;  ///< returned early with nothing to do
  std::uint64_t epoll_waits = 0;       ///< multi-driver epoll_wait blocks
  std::uint64_t inring_waits = 0;      ///< single-driver in-ring blocks
  std::uint64_t idle_sleeps = 0;       ///< no-I/O sleeps until the next timer
  std::uint64_t completions = 0;       ///< completions the reactor delivered
};

class RealContext final : public ExecutionContext {
 public:
  RealContext();
  ~RealContext() override;

  /// Monotonic nanoseconds since construction.
  [[nodiscard]] SimTime now() const override;

  /// Past deadlines are allowed (unlike the simulator): the task fires on
  /// the reactor's next turn.
  TaskHandle schedule_at(SimTime when, TaskFn fn) override;

  /// Register/unregister a completion source. Drivers must outlive their
  /// registration and are polled in registration order. A driver exposing
  /// an event_fd() is added to the reactor's epoll set.
  void add_driver(CompletionDriver* driver);
  void remove_driver(CompletionDriver* driver);

  /// Run timers and completion drivers until the wall clock reaches
  /// `deadline` (nanoseconds since construction). Tasks due exactly at the
  /// deadline still run; like Simulator::run_until, consecutive calls see
  /// contiguous time.
  void run_until(SimTime deadline);

  /// Run until no timers are pending and no driver has I/O in flight.
  void run();

  [[nodiscard]] std::size_t pending_tasks() const { return live_; }
  [[nodiscard]] std::uint64_t executed_tasks() const { return executed_; }
  [[nodiscard]] const ReactorStats& reactor_stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  struct Slot {
    TaskFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool alive = false;
  };

  /// Heap records are plain data; the callback stays in the slab. Ties on
  /// `when` break by scheduling order (seq), matching the simulator.
  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool task_pending(std::uint32_t slot,
                                  std::uint32_t generation) const override;
  void cancel_task(std::uint32_t slot, std::uint32_t generation) override;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  /// Drop cancelled records off the top of the timer heap.
  void purge_dead_tops();
  /// Fire every timer due at or before the current wall clock. Returns the
  /// number fired.
  std::size_t fire_due();
  [[nodiscard]] std::size_t total_in_flight() const;
  /// Flush staged submissions, sweep for ready completions, and block up
  /// to `max_wait` ns for I/O or the deadline (whichever comes first).
  void wait_for_work(SimTime max_wait);
  /// Block in one epoll_wait over every busy driver's eventfd plus the
  /// deadline timerfd. Pre-condition: a non-blocking sweep came up empty.
  void wait_multiplexed(SimTime max_wait);
  /// Consume an eventfd-style readable signal without blocking.
  static void drain_event_fd(int fd);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue_;
  std::vector<CompletionDriver*> drivers_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  int epoll_fd_ = -1;  ///< multiplexes driver eventfds + timer_fd_
  int timer_fd_ = -1;  ///< arms the timer heap's next deadline for epoll
  ReactorStats stats_;
};

}  // namespace sst::exec
