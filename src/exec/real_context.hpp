// Wall-clock execution context: the real-I/O counterpart of the simulator.
//
// RealContext runs the same callback graph the simulator runs, but `now()`
// is the monotonic clock (nanoseconds since construction, so time starts at
// zero like a simulation) and scheduled tasks fire from a reactor loop.
// Between due timers the loop polls registered CompletionDrivers — sources
// of asynchronous completions such as the io_uring block device — so I/O
// completions and timer callbacks are delivered on one thread, preserving
// the single-threaded execution model every layer above the block-device
// seam was written against.
//
// Task bookkeeping mirrors the simulator's slab: slots are recycled through
// a free list, handles address (slot, generation), and cancelled heap
// records are purged lazily when they surface.
#pragma once

#include <chrono>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "exec/execution_context.hpp"

namespace sst::exec {

/// A pollable source of asynchronous completions (an io_uring reactor, an
/// eventfd, ...). RealContext drains drivers between timer callbacks.
class CompletionDriver {
 public:
  virtual ~CompletionDriver() = default;

  /// Deliver ready completions, blocking up to `max_wait` nanoseconds when
  /// none are ready yet. Returns the number of completions delivered.
  virtual std::size_t poll(SimTime max_wait) = 0;

  /// Operations submitted and not yet completed.
  [[nodiscard]] virtual std::size_t in_flight() const = 0;
};

class RealContext final : public ExecutionContext {
 public:
  RealContext();
  ~RealContext() override = default;

  /// Monotonic nanoseconds since construction.
  [[nodiscard]] SimTime now() const override;

  /// Past deadlines are allowed (unlike the simulator): the task fires on
  /// the reactor's next turn.
  TaskHandle schedule_at(SimTime when, TaskFn fn) override;

  /// Register/unregister a completion source. Drivers must outlive their
  /// registration and are polled in registration order.
  void add_driver(CompletionDriver* driver);
  void remove_driver(CompletionDriver* driver);

  /// Run timers and completion drivers until the wall clock reaches
  /// `deadline` (nanoseconds since construction). Tasks due exactly at the
  /// deadline still run; like Simulator::run_until, consecutive calls see
  /// contiguous time.
  void run_until(SimTime deadline);

  /// Run until no timers are pending and no driver has I/O in flight.
  void run();

  [[nodiscard]] std::size_t pending_tasks() const { return live_; }
  [[nodiscard]] std::uint64_t executed_tasks() const { return executed_; }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  struct Slot {
    TaskFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool alive = false;
  };

  /// Heap records are plain data; the callback stays in the slab. Ties on
  /// `when` break by scheduling order (seq), matching the simulator.
  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool task_pending(std::uint32_t slot,
                                  std::uint32_t generation) const override;
  void cancel_task(std::uint32_t slot, std::uint32_t generation) override;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  /// Drop cancelled records off the top of the timer heap.
  void purge_dead_tops();
  /// Fire every timer due at or before the current wall clock. Returns the
  /// number fired.
  std::size_t fire_due();
  [[nodiscard]] std::size_t total_in_flight() const;
  /// Poll drivers (blocking up to `max_wait`) or, with no I/O in flight,
  /// sleep for `max_wait`.
  void wait_for_work(SimTime max_wait);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue_;
  std::vector<CompletionDriver*> drivers_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sst::exec
