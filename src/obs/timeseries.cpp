#include "obs/timeseries.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace sst::obs {

namespace {

void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

void TimeSeries::write_csv(std::ostream& os) const {
  os << "time_s";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  for (std::size_t i = 0; i < times.size(); ++i) {
    write_double(os, to_seconds(times[i]));
    for (const double v : rows[i]) {
      os << ',';
      write_double(os, v);
    }
    os << '\n';
  }
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

void TimeSeries::write_json(std::ostream& os) const {
  os << "{\"names\":[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << names[i] << '"';
  }
  os << "],\"time_s\":[";
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i != 0) os << ',';
    write_double(os, to_seconds(times[i]));
  }
  os << "],\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) os << ',';
    os << '[';
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      if (j != 0) os << ',';
      write_double(os, rows[i][j]);
    }
    os << ']';
  }
  os << "]}\n";
}

std::string TimeSeries::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void TimeSeriesSampler::start() {
  if (interval_ == 0 || gauges_.empty()) return;
  sample();
  arm();
}

void TimeSeriesSampler::stop() { tick_.cancel(); }

void TimeSeriesSampler::sample() {
  series_.times.push_back(sim_.now());
  auto& row = series_.rows.emplace_back();
  row.reserve(gauges_.size());
  for (auto& g : gauges_) row.push_back(g());
}

void TimeSeriesSampler::arm() {
  tick_ = sim_.schedule_after(interval_, [this] {
    sample();
    arm();
  });
}

}  // namespace sst::obs
