#include "obs/tracer.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace sst::obs {

namespace {

/// Escape a string for a JSON string literal (track names are the only
/// dynamic strings; everything else is a literal under our control).
void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Nanoseconds -> microseconds with three decimals ("12.345"), the unit
/// Chrome Trace expects. Integer arithmetic keeps the text deterministic.
void write_us(std::ostream& os, SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

void write_arg(std::ostream& os, const char* key, double val) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", val);
  os << ",\"args\":{\"" << key << "\":" << buf << "}";
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"streamstore\"}}";
  for (const auto& [tid, name] : tracks_) {
    os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
  }
  for (const TraceEvent& e : events_) {
    os << ",\n{\"ph\":\"" << e.phase << "\",\"pid\":0,\"tid\":" << e.tid
       << ",\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name << "\",\"ts\":";
    write_us(os, e.ts);
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_us(os, e.dur);
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (e.arg_key != nullptr) write_arg(os, e.arg_key, e.arg_val);
    os << "}";
  }
  os << "\n]}\n";
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void Tracer::merge_from(const Tracer& other,
                        const std::function<std::uint32_t(std::uint32_t)>& remap) {
  events_.reserve(events_.size() + other.events_.size());
  for (TraceEvent e : other.events_) {
    if (remap) e.tid = remap(e.tid);
    events_.push_back(e);
  }
  for (const auto& [tid, name] : other.tracks_) {
    tracks_.emplace_back(remap ? remap(tid) : tid, name);
  }
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace sst::obs
