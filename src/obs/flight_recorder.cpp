#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>

namespace sst::obs {

namespace {

[[nodiscard]] bool event_before(const FlightEvent& lhs, const FlightEvent& rhs) {
  return std::tie(lhs.ts, lhs.shard, lhs.seq) < std::tie(rhs.ts, rhs.shard, rhs.seq);
}

}  // namespace

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  const std::uint64_t live = std::min<std::uint64_t>(recorded_, ring_.size());
  out.reserve(static_cast<std::size_t>(live));
  for (std::uint64_t i = recorded_ - live; i < recorded_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void FlightRecorder::merge_from(const FlightRecorder& other) {
  std::vector<FlightEvent> combined = events();
  const std::vector<FlightEvent> theirs = other.events();
  combined.insert(combined.end(), theirs.begin(), theirs.end());
  std::sort(combined.begin(), combined.end(), event_before);

  const std::uint64_t total = recorded_ + other.recorded_;
  const std::size_t keep = std::min(combined.size(), ring_.size());
  // Rebuild the ring from the newest `keep` events so slot order stays
  // chronological and `recorded_` keeps counting drops.
  recorded_ = total - static_cast<std::uint64_t>(keep);
  for (std::size_t i = combined.size() - keep; i < combined.size(); ++i) {
    FlightEvent& slot = ring_[recorded_ % ring_.size()];
    slot = combined[i];
    ++recorded_;
  }
}

void FlightRecorder::write_json(std::ostream& os) const {
  os << "{\"capacity\":" << ring_.size() << ",\"recorded\":" << recorded_
     << ",\"dropped\":" << dropped() << ",\"events\":[";
  bool first = true;
  for (const FlightEvent& e : events()) {
    if (!first) os << ',';
    first = false;
    os << "\n {\"ts\":" << e.ts << ",\"code\":\"" << to_string(e.code)
       << "\",\"rid\":" << e.rid << ",\"a\":" << e.a << ",\"b\":" << e.b
       << ",\"shard\":" << e.shard << ",\"seq\":" << e.seq << '}';
  }
  os << (first ? "]}\n" : "\n]}\n");
}

std::string FlightRecorder::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool FlightRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace sst::obs
