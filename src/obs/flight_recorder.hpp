// Always-on flight recorder: a fixed-capacity ring buffer journaling
// request-lifecycle and fault events at near-zero steady-state cost.
//
// record() writes into a preallocated slot — no allocation, no branching
// beyond the null-check producers already do for the tracer — so it can
// stay enabled in production-style runs. The ring keeps the most recent
// `capacity` events; on an SLO breach, a device failure, or an explicit
// --flight-dump the buffer is serialized to JSON for post-mortem analysis.
//
// Sharded runs give each shard a private recorder (same single-writer
// discipline as the per-shard tracers); merge_from() stitches them into one
// chronological journal after the engine joins.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sst::obs {

/// What happened. Codes are stable across runs (used by tests and tooling).
enum class FlightCode : std::uint8_t {
  kIssue = 1,          ///< client issued a request (a = device, b = offset)
  kAdmit = 2,          ///< server admitted it (a = device, b = route)
  kServe = 3,          ///< scheduler served from staging (a = device, b = bytes)
  kComplete = 4,       ///< client saw the completion (a = latency ns, b = ok)
  kRequestFailed = 5,  ///< scheduler failed the request (a = device, b = status)
  kStreamEvicted = 6,  ///< stream evicted under pool pressure (a = device)
  kDeviceFailed = 7,   ///< fault layer marked a device dead (a = device)
  kSloBreach = 8,      ///< SLO engine verdict = fail (a = breached windows)
};

[[nodiscard]] constexpr const char* to_string(FlightCode code) {
  switch (code) {
    case FlightCode::kIssue: return "issue";
    case FlightCode::kAdmit: return "admit";
    case FlightCode::kServe: return "serve";
    case FlightCode::kComplete: return "complete";
    case FlightCode::kRequestFailed: return "request_failed";
    case FlightCode::kStreamEvicted: return "stream_evicted";
    case FlightCode::kDeviceFailed: return "device_failed";
    case FlightCode::kSloBreach: return "slo_breach";
  }
  return "?";
}

/// One journal slot. `seq` is per-recorder and monotone, so merged shard
/// journals sort stably by (ts, shard, seq).
struct FlightEvent {
  SimTime ts = 0;
  std::uint64_t rid = 0;  ///< request id; 0 for non-request events
  std::uint64_t a = 0;    ///< code-specific payload (see FlightCode)
  std::uint64_t b = 0;
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  FlightCode code = FlightCode::kIssue;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  /// O(1), allocation-free: overwrite the oldest slot once full.
  void record(FlightCode code, SimTime ts, std::uint64_t rid, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    FlightEvent& slot = ring_[recorded_ % ring_.size()];
    slot.ts = ts;
    slot.rid = rid;
    slot.a = a;
    slot.b = b;
    slot.seq = recorded_;
    slot.shard = shard_;
    slot.code = code;
    ++recorded_;
  }

  /// Tag subsequently recorded events with the owning shard id.
  void set_shard(std::uint32_t shard) { shard_ = shard; }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded; values above capacity() mean the ring
  /// wrapped and `recorded() - capacity()` oldest events were dropped.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  /// Surviving events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Fold another recorder's surviving events into this ring: the combined
  /// set is ordered by (ts, shard, seq) and the newest `capacity()` kept.
  void merge_from(const FlightRecorder& other);

  void clear() { recorded_ = 0; }

  /// {"capacity":..,"recorded":..,"dropped":..,"events":[...]} — events in
  /// chronological order.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  /// Write the JSON dump to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint32_t shard_ = 0;
};

}  // namespace sst::obs
