#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string_view>

namespace sst::obs {

namespace {

void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

[[nodiscard]] std::string_view group_of(std::string_view name) {
  const auto dot = name.find('.');
  return dot == std::string_view::npos ? std::string_view{} : name.substr(0, dot);
}

[[nodiscard]] std::string_view key_of(std::string_view name) {
  const auto dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(dot + 1);
}

}  // namespace

HistogramSnapshot HistogramSnapshot::from(const stats::LatencyHistogram& h) {
  HistogramSnapshot snap;
  snap.count = h.count();
  snap.mean_ms = h.mean_ms();
  snap.p50_ms = h.p50_ms();
  snap.p95_ms = h.p95_ms();
  snap.p99_ms = h.p99_ms();
  snap.p999_ms = h.p999_ms();
  snap.max_ms = h.max_ms();
  snap.buckets = h.nonzero_buckets();
  return snap;
}

HistogramSnapshot HistogramSnapshot::from(
    const stats::LatencyHistogram& h,
    const std::vector<std::pair<double, std::string>>& extra_quantiles) {
  HistogramSnapshot snap = from(h);
  snap.extra.reserve(extra_quantiles.size());
  for (const auto& [q, label] : extra_quantiles) {
    snap.extra.emplace_back(label + "_ms", h.quantile_ms(q));
  }
  return snap;
}

void MetricsRegistry::counter(std::string_view name, std::uint64_t value) {
  Entry e;
  e.name = std::string(name);
  e.kind = Kind::kCounter;
  e.u64 = value;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::gauge(std::string_view name, double value) {
  Entry e;
  e.name = std::string(name);
  e.kind = Kind::kGauge;
  e.f64 = value;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::text(std::string_view name, std::string_view value) {
  Entry e;
  e.name = std::string(name);
  e.kind = Kind::kText;
  e.str = std::string(value);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::array(std::string_view name, std::vector<double> values) {
  Entry e;
  e.name = std::string(name);
  e.kind = Kind::kArray;
  e.arr = std::move(values);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::histogram(std::string_view name,
                                const stats::LatencyHistogram& h) {
  Entry e;
  e.name = std::string(name);
  e.kind = Kind::kHistogram;
  e.hist = HistogramSnapshot::from(h);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::histogram(
    std::string_view name, const stats::LatencyHistogram& h,
    const std::vector<std::pair<double, std::string>>& extra_quantiles) {
  Entry e;
  e.name = std::string(name);
  e.kind = Kind::kHistogram;
  e.hist = HistogramSnapshot::from(h, extra_quantiles);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::write_value(std::ostream& os, const Entry& entry) const {
  switch (entry.kind) {
    case Kind::kCounter:
      os << entry.u64;
      break;
    case Kind::kGauge:
      write_double(os, entry.f64);
      break;
    case Kind::kText:
      os << '"';
      write_escaped(os, entry.str);
      os << '"';
      break;
    case Kind::kArray:
      os << '[';
      for (std::size_t i = 0; i < entry.arr.size(); ++i) {
        if (i != 0) os << ',';
        write_double(os, entry.arr[i]);
      }
      os << ']';
      break;
    case Kind::kHistogram: {
      const HistogramSnapshot& h = entry.hist;
      os << "{\"count\":" << h.count << ",\"mean_ms\":";
      write_double(os, h.mean_ms);
      os << ",\"p50_ms\":";
      write_double(os, h.p50_ms);
      os << ",\"p95_ms\":";
      write_double(os, h.p95_ms);
      os << ",\"p99_ms\":";
      write_double(os, h.p99_ms);
      os << ",\"p999_ms\":";
      write_double(os, h.p999_ms);
      os << ",\"max_ms\":";
      write_double(os, h.max_ms);
      for (const auto& [label, value] : h.extra) {
        os << ",\"";
        write_escaped(os, label);
        os << "\":";
        write_double(os, value);
      }
      os << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (i != 0) os << ',';
        os << "{\"lower_us\":";
        write_double(os, h.buckets[i].lower_ns / 1e3);
        os << ",\"upper_us\":";
        write_double(os, h.buckets[i].upper_ns / 1e3);
        os << ",\"count\":" << h.buckets[i].count << '}';
      }
      os << "]}";
      break;
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  // Group order = first-appearance order of each prefix; within a group,
  // registration order. Both are stable, so output is deterministic.
  std::vector<std::string_view> groups;
  for (const Entry& e : entries_) {
    const auto g = group_of(e.name);
    bool seen = false;
    for (const auto& existing : groups) {
      if (existing == g) {
        seen = true;
        break;
      }
    }
    if (!seen) groups.push_back(g);
  }

  os << "{";
  bool first_out = true;
  for (const auto& g : groups) {
    if (!first_out) os << ",";
    first_out = false;
    os << "\n";
    if (g.empty()) {
      // Top-level (dotless) entries, emitted inline.
      bool first_entry = true;
      for (const Entry& e : entries_) {
        if (!group_of(e.name).empty()) continue;
        if (!first_entry) os << ",\n";
        first_entry = false;
        os << "  \"";
        write_escaped(os, e.name);
        os << "\": ";
        write_value(os, e);
      }
    } else {
      os << "  \"";
      write_escaped(os, g);
      os << "\": {";
      bool first_entry = true;
      for (const Entry& e : entries_) {
        if (group_of(e.name) != g) continue;
        if (!first_entry) os << ",";
        first_entry = false;
        os << "\n    \"";
        write_escaped(os, key_of(e.name));
        os << "\": ";
        write_value(os, e);
      }
      os << "\n  }";
    }
  }
  os << "\n}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace sst::obs
