#include "obs/slo.hpp"

#include <algorithm>

namespace sst::obs {

void WindowedLatencyRecorder::record(SimTime now, SimTime latency) {
  const std::uint64_t ordinal = now / window_;
  if (!any_) {
    first_ordinal_ = ordinal;
    any_ = true;
  }
  if (ordinal < first_ordinal_) {
    // Sample from before the first seen window (possible when per-shard
    // clocks differ at merge boundaries): shift the vector right.
    const auto shift = static_cast<std::size_t>(first_ordinal_ - ordinal);
    windows_.insert(windows_.begin(), shift, stats::LatencyHistogram{});
    first_ordinal_ = ordinal;
  }
  const auto idx = static_cast<std::size_t>(ordinal - first_ordinal_);
  if (idx >= windows_.size()) windows_.resize(idx + 1);
  windows_[idx].add(latency);
}

void WindowedLatencyRecorder::merge_from(const WindowedLatencyRecorder& other) {
  if (other.windows_.empty()) return;
  if (windows_.empty()) {
    first_ordinal_ = other.first_ordinal_;
    any_ = other.any_;
    windows_ = other.windows_;
    return;
  }
  const std::uint64_t lo = std::min(first_ordinal_, other.first_ordinal_);
  if (lo < first_ordinal_) {
    const auto shift = static_cast<std::size_t>(first_ordinal_ - lo);
    windows_.insert(windows_.begin(), shift, stats::LatencyHistogram{});
    first_ordinal_ = lo;
  }
  const auto base = static_cast<std::size_t>(other.first_ordinal_ - first_ordinal_);
  if (base + other.windows_.size() > windows_.size()) {
    windows_.resize(base + other.windows_.size());
  }
  for (std::size_t i = 0; i < other.windows_.size(); ++i) {
    windows_[base + i].merge(other.windows_[i]);
  }
}

void LatencyBreakdown::merge_from(const LatencyBreakdown& other) {
  enabled = enabled || other.enabled;
  attributed += other.attributed;
  staged_copied += other.staged_copied;
  ingress.merge(other.ingress);
  queue.merge(other.queue);
  staging.merge(other.staging);
  uplink.merge(other.uplink);
  disk_queue.merge(other.disk_queue);
  disk_service.merge(other.disk_service);
  net_response.merge(other.net_response);
}

RequestTrace* LatencyAttributor::acquire(std::uint64_t rid, SimTime issue_ts) {
  RequestTrace* trace = slab_.acquire();
  *trace = RequestTrace{};  // slab slots keep their last state
  trace->rid = rid;
  trace->issue = issue_ts;
  return trace;
}

void LatencyAttributor::complete(RequestTrace* trace, SimTime client_ts, bool ok) {
  if (trace == nullptr) return;
  if (ok) {
    // Clamp every stamp into [issue, client_ts] and resolve missing ones
    // forward: direct and rejected paths never pass through serve_request
    // (serve := done folds the service into the queue stage), and serverless
    // raw-device runs stamp nothing at all (the whole latency lands in
    // queue). Either way the four stages still partition client_ts - issue.
    const SimTime issue = trace->issue;
    SimTime admit = trace->admit;
    if (admit < issue || admit > client_ts) admit = issue;
    SimTime done = trace->done;
    if (done < admit || done > client_ts) done = client_ts;
    SimTime serve = trace->serve;
    if (serve < admit || serve > done) serve = done;
    breakdown_.ingress.add(admit - issue);
    breakdown_.queue.add(serve - admit);
    breakdown_.staging.add(done - serve);
    breakdown_.uplink.add(client_ts - done);
    breakdown_.staged_copied += trace->staged_copied;
    ++breakdown_.attributed;
    if (window_ != nullptr) window_->record(client_ts, client_ts - trace->issue);
  }
  slab_.release(trace);
}

void LatencyAttributor::begin_measurement() {
  breakdown_.attributed = 0;
  breakdown_.staged_copied = 0;
  breakdown_.ingress.reset();
  breakdown_.queue.reset();
  breakdown_.staging.reset();
  breakdown_.uplink.reset();
  if (window_ != nullptr) window_->reset();
}

SloReport SloEngine::evaluate(const SloSpec& spec,
                              const WindowedLatencyRecorder& windows,
                              const stats::LatencyHistogram& overall) {
  SloReport report;
  report.enabled = spec.enabled();
  report.objective_ms = static_cast<double>(spec.objective) / 1e6;
  report.quantile = spec.quantile;
  report.window_ms = static_cast<double>(spec.window) / 1e6;
  report.burn_rate_allowed = spec.burn_rate;
  report.overall_ms = overall.quantile_ms(spec.quantile);
  report.samples = overall.count();
  if (!report.enabled) return report;

  for (const auto& h : windows.windows()) {
    if (h.count() == 0) continue;  // idle window: nothing to judge
    ++report.windows_evaluated;
    const double q_ms = h.quantile_ms(spec.quantile);
    report.worst_window_ms = std::max(report.worst_window_ms, q_ms);
    if (q_ms > report.objective_ms) ++report.windows_breached;
  }
  report.burn_rate_observed =
      report.windows_evaluated > 0
          ? static_cast<double>(report.windows_breached) /
                static_cast<double>(report.windows_evaluated)
          : 0.0;
  // No evaluated windows means no evidence of a breach — pass. (A run with
  // zero completed requests fails at the throughput layer, not here.)
  report.pass = report.burn_rate_observed <= report.burn_rate_allowed;
  return report;
}

}  // namespace sst::obs
