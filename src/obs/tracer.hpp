// Structured request-lifecycle tracer emitting Chrome Trace Event Format
// JSON (loadable in Perfetto / chrome://tracing).
//
// One Tracer per experiment — never a global singleton — so parallel sweep
// workers can trace concurrent runs without sharing state. Components hold
// a nullable `Tracer*`; every instrumentation site is a single null check
// when tracing is off, and when it is on, events append into a
// preallocated slab of fixed-size records (string fields must be literals),
// so the recording hot path performs no per-event heap allocation once the
// slab is warm.
//
// Timestamps are simulated time (SimTime nanoseconds), serialized as
// microseconds with nanosecond precision — byte-identical output for
// identical runs, since the simulator itself is deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace sst::obs {

// Track ("thread") id layout. Chrome traces organize events by (pid, tid);
// we use one process and carve the tid space per component so every disk,
// controller, device request queue and stream renders on its own track.
inline constexpr std::uint32_t kSchedulerTrack = 1;

[[nodiscard]] constexpr std::uint32_t disk_track(DiskId id) { return 0x100 + id; }
[[nodiscard]] constexpr std::uint32_t controller_track(ControllerId id) {
  return 0x10000 + id;
}
[[nodiscard]] constexpr std::uint32_t request_track(std::uint32_t device) {
  return 0x20000 + device;
}
/// Stream tracks wrap at 16 bits; collisions only matter past 65k streams.
[[nodiscard]] constexpr std::uint32_t stream_track(StreamId id) {
  return 0x30000 + static_cast<std::uint32_t>(id & 0xFFFF);
}

/// One fixed-size trace record. `cat`, `name` and `arg_key` must point at
/// string literals (or other static-storage strings): the tracer stores the
/// pointers, not copies, to keep recording allocation-free.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  const char* arg_key = nullptr;  ///< nullptr = no argument
  double arg_val = 0.0;
  SimTime ts = 0;   ///< event (or span start) time, ns
  SimTime dur = 0;  ///< span length for phase 'X', ignored otherwise
  std::uint32_t tid = 0;
  char phase = 'i';  ///< 'X' complete, 'B'/'E' duration pair, 'i' instant
};

class Tracer {
 public:
  /// `reserve_events` sizes the initial slab; recording beyond it grows the
  /// vector (amortized, still deterministic).
  explicit Tracer(std::size_t reserve_events = 1 << 12) {
    events_.reserve(reserve_events);
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Complete span [start, end) — phase 'X'.
  void complete(std::uint32_t tid, const char* cat, const char* name, SimTime start,
                SimTime end, const char* arg_key = nullptr, double arg_val = 0.0) {
    events_.push_back(
        {cat, name, arg_key, arg_val, start, end - start, tid, 'X'});
  }

  /// Begin/end duration pair — must nest properly per track.
  void begin(std::uint32_t tid, const char* cat, const char* name, SimTime ts) {
    events_.push_back({cat, name, nullptr, 0.0, ts, 0, tid, 'B'});
  }
  void end(std::uint32_t tid, const char* cat, const char* name, SimTime ts) {
    events_.push_back({cat, name, nullptr, 0.0, ts, 0, tid, 'E'});
  }

  /// Thread-scoped instant event.
  void instant(std::uint32_t tid, const char* cat, const char* name, SimTime ts,
               const char* arg_key = nullptr, double arg_val = 0.0) {
    events_.push_back({cat, name, arg_key, arg_val, ts, 0, tid, 'i'});
  }

  /// Human-readable label for a track (emitted as thread_name metadata).
  void name_track(std::uint32_t tid, std::string name) {
    tracks_.emplace_back(tid, std::move(name));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::string>>& tracks() const {
    return tracks_;
  }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  void clear() {
    events_.clear();
    tracks_.clear();
  }

  /// Append `other`'s events and track names, mapping every track id
  /// through `remap` (nullptr = identity). Used to stitch per-shard tracer
  /// streams into one trace: each shard records device/stream tracks in its
  /// local id space and the merge shifts them into the global layout.
  /// Events keep their timestamps; Chrome Trace does not require the
  /// combined list to be time-sorted.
  void merge_from(const Tracer& other,
                  const std::function<std::uint32_t(std::uint32_t)>& remap = nullptr);

  /// Serialize as {"traceEvents":[...]}. Deterministic: same events, same
  /// bytes.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  /// Write to `path`; false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> tracks_;
};

}  // namespace sst::obs
