// Periodic time-series sampling of live gauges during a simulation run.
//
// A TimeSeriesSampler registers named gauge callbacks (dispatch-set
// occupancy, buffer-pool bytes, per-disk queue depth, windowed throughput,
// ...) and reschedules itself on the simulator every `interval` of sim
// time, recording one row per tick. The collected TimeSeries is plain
// copyable data that travels inside ExperimentResult and exports to CSV or
// JSON.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "exec/execution_context.hpp"

namespace sst::obs {

/// Column-named sample matrix: rows[i][j] is gauge `names[j]` sampled at
/// `times[i]`.
struct TimeSeries {
  std::vector<std::string> names;
  std::vector<SimTime> times;
  std::vector<std::vector<double>> rows;

  [[nodiscard]] bool empty() const { return times.empty(); }
  [[nodiscard]] std::size_t size() const { return times.size(); }

  /// Header "time_s,<name>,..." then one row per sample.
  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;
  /// {"names":[...],"time_s":[...],"rows":[[...],...]}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
};

class TimeSeriesSampler {
 public:
  /// `interval` is the sim-time spacing between samples; must be > 0.
  TimeSeriesSampler(exec::ExecutionContext& sim, SimTime interval)
      : sim_(sim), interval_(interval) {}
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;
  ~TimeSeriesSampler() { stop(); }

  /// Register a gauge before start(); sampled once per tick in
  /// registration order.
  void add_gauge(std::string name, std::function<double()> fn) {
    series_.names.push_back(std::move(name));
    gauges_.push_back(std::move(fn));
  }

  /// Take a first sample immediately and schedule the periodic tick.
  void start();
  /// Cancel the pending tick; the collected series remains readable.
  void stop();

  [[nodiscard]] const TimeSeries& series() const { return series_; }
  /// Move the collected series out (sampler keeps running but restarts
  /// from an empty matrix).
  [[nodiscard]] TimeSeries take() {
    TimeSeries out = std::move(series_);
    series_ = TimeSeries{};
    series_.names = out.names;
    return out;
  }

 private:
  void sample();
  void arm();

  exec::ExecutionContext& sim_;
  SimTime interval_;
  std::vector<std::function<double()>> gauges_;
  TimeSeries series_;
  exec::TaskHandle tick_;
};

}  // namespace sst::obs
