// Tail-latency observability: per-request latency attribution and the SLO
// engine.
//
// Attribution threads a compact stage-timestamp record (RequestTrace,
// pooled — no steady-state allocation) through the request lifecycle:
//
//   issue -> [ingress: network downlink + interconnect hop] -> admit
//         -> [queue: scheduler queue + disk queue + seek/rotation/transfer
//             as observed by this request] -> serve
//         -> [staging: buffer consume + host CPU completion charge] -> done
//         -> [uplink: response transit back to the client + return hop]
//         -> client completion
//
// The four stages partition the client-observed response time contiguously,
// so their per-request sums reconcile with the end-to-end latency by
// construction. Records cross ShardedEngine mailbox trampolines untouched:
// a request is owned by exactly one shard at a time and the barrier
// provides the happens-before edges, so the stamps stitch into one causal
// chain under a stable request id.
//
// The SLO engine evaluates a declarative objective (latency bound at a
// target quantile, windowed, with an allowed burn rate) against streaming
// log-bucketed histograms collected per evaluation window.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slab.hpp"
#include "common/types.hpp"
#include "stats/histogram.hpp"

namespace sst::obs {

/// Which route the storage server gave a request (RequestTrace::route).
enum class RequestRoute : std::uint8_t {
  kUnknown = 0,
  kStream = 1,       ///< matched / created a sequential stream
  kDirectRead = 2,   ///< non-sequential read, straight to the device
  kDirectWrite = 3,  ///< write, straight to the device
  kRejected = 4,     ///< failed fast against a dead device
};

[[nodiscard]] constexpr const char* to_string(RequestRoute r) {
  switch (r) {
    case RequestRoute::kUnknown: return "unknown";
    case RequestRoute::kStream: return "stream";
    case RequestRoute::kDirectRead: return "direct_read";
    case RequestRoute::kDirectWrite: return "direct_write";
    case RequestRoute::kRejected: return "rejected";
  }
  return "?";
}

/// Per-request stage timestamps. Slots are pooled by the LatencyAttributor
/// and travel with the request (ClientRequest::trace) across layers and
/// shards; every producer stamps its own field, null-checked, so the record
/// costs nothing when attribution is off.
struct RequestTrace {
  std::uint64_t rid = 0;  ///< stable request id: (client ordinal << 24) | seq
  SimTime issue = 0;      ///< client handed the request to its sink
  SimTime admit = 0;      ///< StorageServer::submit saw it
  SimTime serve = 0;      ///< scheduler began serving from staged data
  SimTime done = 0;       ///< server-side completion (before response uplink)
  Bytes staged_copied = 0;  ///< bytes memcpy'd while staging (0 = zero-copy)
  RequestRoute route = RequestRoute::kUnknown;
};

/// Build the stable request id from a client's ordinal (its position in the
/// experiment's stream-spec order — shard-count invariant) and that
/// client's issue sequence number.
[[nodiscard]] constexpr std::uint64_t make_request_id(std::uint32_t client_ordinal,
                                                      std::uint64_t seq) {
  return (static_cast<std::uint64_t>(client_ordinal + 1) << 24) | (seq & 0xFFFFFF);
}

/// Windowed streaming latency collection: one log-bucketed histogram per
/// fixed evaluation window of sim time (windows are indexed by absolute
/// time, so per-shard recorders merge window-by-window).
class WindowedLatencyRecorder {
 public:
  explicit WindowedLatencyRecorder(SimTime window) : window_(window > 0 ? window : 1) {}

  void record(SimTime now, SimTime latency);
  /// Drop everything collected so far (start of the measurement window).
  void reset() { windows_.clear(); }
  void merge_from(const WindowedLatencyRecorder& other);

  [[nodiscard]] SimTime window() const { return window_; }
  /// One slot per window ordinal since the first recorded sample; empty
  /// windows stay default-constructed.
  [[nodiscard]] const std::vector<stats::LatencyHistogram>& windows() const {
    return windows_;
  }
  /// Ordinal (now / window) of windows_[0]; 0 when nothing was recorded.
  [[nodiscard]] std::uint64_t first_ordinal() const { return first_ordinal_; }

 private:
  SimTime window_;
  std::uint64_t first_ordinal_ = 0;
  bool any_ = false;
  std::vector<stats::LatencyHistogram> windows_;
};

/// Stage histograms aggregated over attributed requests. The first four
/// partition the response time (their per-request durations sum to the
/// end-to-end latency); the rest are informational device-level views
/// filled by the experiment runner from the disk and network layers.
struct LatencyBreakdown {
  bool enabled = false;
  std::uint64_t attributed = 0;  ///< successful requests folded in
  Bytes staged_copied = 0;       ///< bytes memcpy'd on the staging path
  stats::LatencyHistogram ingress;  ///< issue -> admit
  stats::LatencyHistogram queue;    ///< admit -> serve (sched + disk + media)
  stats::LatencyHistogram staging;  ///< serve -> done (consume + CPU charge)
  stats::LatencyHistogram uplink;   ///< done -> client completion
  /// Device-level attribution (whole run, per disk command / net response —
  /// decoupled from individual requests by prefetching):
  stats::LatencyHistogram disk_queue;    ///< command submit -> service start
  stats::LatencyHistogram disk_service;  ///< service start -> data available
  stats::LatencyHistogram net_response;  ///< response entering -> leaving link

  void merge_from(const LatencyBreakdown& other);
  /// Sum over the four additive stages, milliseconds.
  [[nodiscard]] double stage_sum_ms() const {
    return ingress.total_ms() + queue.total_ms() + staging.total_ms() +
           uplink.total_ms();
  }
};

/// Owns the pooled RequestTrace slots and folds completed records into the
/// stage histograms (and, when attached, the windowed recorder feeding the
/// SLO engine). One attributor per shard: acquire/complete run on the
/// request's home shard, intermediate stamps on the owning shard — the
/// barrier orders them.
class LatencyAttributor {
 public:
  [[nodiscard]] RequestTrace* acquire(std::uint64_t rid, SimTime issue_ts);
  /// Fold the record into the stage histograms (successful completions
  /// only) and recycle the slot.
  void complete(RequestTrace* trace, SimTime client_ts, bool ok);

  /// Discard warm-up stage data; in-flight records keep their stamps and
  /// fold fully on completion (matching the clients' latency meters).
  void begin_measurement();

  void attach_window(WindowedLatencyRecorder* recorder) { window_ = recorder; }

  [[nodiscard]] const LatencyBreakdown& breakdown() const { return breakdown_; }
  [[nodiscard]] LatencyBreakdown& breakdown() { return breakdown_; }

 private:
  Slab<RequestTrace> slab_;
  LatencyBreakdown breakdown_;
  WindowedLatencyRecorder* window_ = nullptr;
};

/// Declarative SLO: "quantile `quantile` of the response time must stay
/// under `objective` in every `window`, with at most `burn_rate` of the
/// evaluated windows allowed to breach".
struct SloSpec {
  SimTime objective = 0;     ///< latency bound; 0 = SLO disabled
  double quantile = 0.99;    ///< target quantile in (0, 1], e.g. 0.999
  SimTime window = sec(1);   ///< evaluation window
  double burn_rate = 0.0;    ///< allowed breaching-window fraction [0, 1]

  [[nodiscard]] bool enabled() const { return objective > 0; }
};

/// The verdict: exported under the "slo" metrics group and turned into a
/// nonzero CLI exit code on failure.
struct SloReport {
  bool enabled = false;
  bool pass = true;
  double objective_ms = 0.0;
  double quantile = 0.0;
  double window_ms = 0.0;
  double burn_rate_allowed = 0.0;
  double burn_rate_observed = 0.0;
  std::uint64_t windows_evaluated = 0;  ///< windows holding >= 1 sample
  std::uint64_t windows_breached = 0;
  double worst_window_ms = 0.0;   ///< max windowed quantile seen
  double overall_ms = 0.0;        ///< quantile over the whole measurement
  std::uint64_t samples = 0;
};

class SloEngine {
 public:
  /// Evaluate `spec` against the windowed samples; `overall` is the
  /// whole-measurement histogram for the headline quantile.
  [[nodiscard]] static SloReport evaluate(const SloSpec& spec,
                                          const WindowedLatencyRecorder& windows,
                                          const stats::LatencyHistogram& overall);
};

}  // namespace sst::obs
