// Unified metrics export: a registry of named counters, gauges, arrays and
// histogram snapshots that serializes to one deterministic JSON document.
//
// Names are dot-namespaced ("scheduler.rotations", "disk.seek_time_ms");
// write_json groups entries by the prefix before the first dot so the
// output reads as one object per subsystem. Insertion order is preserved —
// the same registrations always produce the same bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.hpp"

namespace sst::obs {

/// A latency histogram frozen for export: headline quantiles plus the
/// non-empty buckets (whose counts sum to `count`).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  std::vector<stats::HistogramBucket> buckets;

  [[nodiscard]] static HistogramSnapshot from(const stats::LatencyHistogram& h);
  /// Snapshot carrying extra quantile columns: each (q, label) pair is
  /// exported as "<label>_ms" alongside the fixed p50/p95/p99/p999 set.
  [[nodiscard]] static HistogramSnapshot from(
      const stats::LatencyHistogram& h,
      const std::vector<std::pair<double, std::string>>& extra_quantiles);

  std::vector<std::pair<std::string, double>> extra;  ///< label -> value (ms)
};

class MetricsRegistry {
 public:
  void counter(std::string_view name, std::uint64_t value);
  void gauge(std::string_view name, double value);
  void text(std::string_view name, std::string_view value);
  void array(std::string_view name, std::vector<double> values);
  void histogram(std::string_view name, const stats::LatencyHistogram& h);
  /// Histogram export with caller-chosen extra quantile columns (arbitrary
  /// q beyond the fixed p50/p95/p99/p999 headline set).
  void histogram(std::string_view name, const stats::LatencyHistogram& h,
                 const std::vector<std::pair<double, std::string>>& extra_quantiles);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// {"group":{"key":value,...},...} — entries grouped by the name prefix
  /// before the first dot; dotless names become top-level keys.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kText, kArray, kHistogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    std::string str;
    std::vector<double> arr;
    HistogramSnapshot hist;
  };

  void write_value(std::ostream& os, const Entry& entry) const;

  std::vector<Entry> entries_;
};

}  // namespace sst::obs
