// Linux-2.6-era I/O scheduler models used as the paper's Figure-2 baseline:
// noop (FIFO + merge), deadline (elevator + expiries), anticipatory
// (deadline + per-process anticipation with think-time estimation), and CFQ
// (per-process round-robin with a request quantum). These sit under the
// kernel page cache (kernel_io.hpp) and above a BlockDevice.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "common/types.hpp"

namespace sst::oskernel {

enum class IoSchedKind : std::uint8_t { kNoop, kDeadline, kAnticipatory, kCfq };

[[nodiscard]] constexpr const char* to_string(IoSchedKind k) {
  switch (k) {
    case IoSchedKind::kNoop: return "noop";
    case IoSchedKind::kDeadline: return "deadline";
    case IoSchedKind::kAnticipatory: return "anticipatory";
    case IoSchedKind::kCfq: return "cfq";
  }
  return "?";
}

/// One block-layer request (reads only; the Figure-2 workload is read-only).
struct BlockIo {
  Lba lba = 0;
  Lba sectors = 0;
  std::uint32_t pid = 0;  ///< issuing process (stream)
  SimTime arrival = 0;
  std::function<void(SimTime)> on_complete;
};

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  virtual void add(BlockIo io) = 0;

  /// Choose the next request to send to the device, or nullopt if the
  /// scheduler prefers to wait (anticipation); wakeup_hint() then tells the
  /// driver when to ask again.
  virtual std::optional<BlockIo> select(SimTime now, Lba head) = 0;

  /// Device completed a request from `pid` ending at `end_lba`.
  virtual void on_complete(std::uint32_t pid, Lba end_lba, SimTime now);

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Absolute time at which a nullopt select() should be retried.
  [[nodiscard]] virtual SimTime wakeup_hint() const { return kSimTimeMax; }
};

/// FIFO with back-merging of contiguous same-process requests.
class NoopScheduler final : public IoScheduler {
 public:
  void add(BlockIo io) override;
  std::optional<BlockIo> select(SimTime now, Lba head) override;
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

 private:
  std::deque<BlockIo> queue_;
};

/// One-way elevator over LBAs with a read-expiry FIFO (500 ms default).
class DeadlineScheduler final : public IoScheduler {
 public:
  explicit DeadlineScheduler(SimTime read_expire = msec(500)) : read_expire_(read_expire) {}

  void add(BlockIo io) override;
  std::optional<BlockIo> select(SimTime now, Lba head) override;
  [[nodiscard]] std::size_t size() const override { return sorted_.size(); }

 private:
  BlockIo take(std::multimap<Lba, BlockIo>::iterator it);

  SimTime read_expire_;
  std::multimap<Lba, BlockIo> sorted_;
  std::deque<std::pair<SimTime, Lba>> fifo_;  ///< (expiry, lba) arrival order
};

/// Deadline elevator plus anticipation: after a read from process P
/// completes, hold the disk idle up to `antic_expire` waiting for P's next
/// nearby read — but only for processes whose estimated think time makes
/// anticipation likely to pay off (the think-time EWMA is the mechanism
/// that lets AS degrade gracefully as process counts grow).
class AnticipatoryScheduler final : public IoScheduler {
 public:
  explicit AnticipatoryScheduler(SimTime antic_expire = msec(6),
                                 Lba near_sectors = bytes_to_sectors(2 * MiB));

  void add(BlockIo io) override;
  std::optional<BlockIo> select(SimTime now, Lba head) override;
  void on_complete(std::uint32_t pid, Lba end_lba, SimTime now) override;
  [[nodiscard]] std::size_t size() const override { return sorted_.size(); }
  [[nodiscard]] SimTime wakeup_hint() const override {
    return anticipating_ ? antic_deadline_ : kSimTimeMax;
  }

  [[nodiscard]] std::uint64_t anticipation_hits() const { return antic_hits_; }
  [[nodiscard]] std::uint64_t anticipation_timeouts() const { return antic_timeouts_; }

 private:
  struct ProcessState {
    SimTime last_complete = 0;
    double think_ewma_ns = 0.0;
    bool seen = false;
  };

  BlockIo take(std::multimap<Lba, BlockIo>::iterator it);
  [[nodiscard]] std::optional<std::multimap<Lba, BlockIo>::iterator> find_near(
      std::uint32_t pid, Lba from);

  SimTime antic_expire_;
  Lba near_sectors_;
  std::multimap<Lba, BlockIo> sorted_;
  std::deque<std::pair<SimTime, Lba>> fifo_;
  std::map<std::uint32_t, ProcessState> procs_;

  bool anticipating_ = false;
  std::uint32_t antic_pid_ = 0;
  Lba antic_from_ = 0;
  SimTime antic_deadline_ = 0;
  std::uint64_t antic_hits_ = 0;
  std::uint64_t antic_timeouts_ = 0;
};

/// Per-process queues served round-robin, `quantum` requests per turn.
class CfqScheduler final : public IoScheduler {
 public:
  explicit CfqScheduler(std::uint32_t quantum = 4) : quantum_(quantum) {}

  void add(BlockIo io) override;
  std::optional<BlockIo> select(SimTime now, Lba head) override;
  [[nodiscard]] std::size_t size() const override { return total_; }

 private:
  std::uint32_t quantum_;
  std::map<std::uint32_t, std::deque<BlockIo>> queues_;
  std::deque<std::uint32_t> rr_;  ///< pids with queued work, service order
  std::uint32_t active_pid_ = 0;
  std::uint32_t served_in_turn_ = 0;
  bool has_active_ = false;
  std::size_t total_ = 0;
};

[[nodiscard]] std::unique_ptr<IoScheduler> make_io_scheduler(IoSchedKind kind);

}  // namespace sst::oskernel
