#include "oskernel/iosched.hpp"

#include <algorithm>
#include <cassert>

namespace sst::oskernel {

void IoScheduler::on_complete(std::uint32_t /*pid*/, Lba /*end_lba*/, SimTime /*now*/) {}

// ----------------------------------------------------------------- noop ----

void NoopScheduler::add(BlockIo io) {
  if (!queue_.empty()) {
    BlockIo& back = queue_.back();
    if (back.pid == io.pid && back.lba + back.sectors == io.lba) {
      back.sectors += io.sectors;
      back.on_complete = [a = std::move(back.on_complete),
                          b = std::move(io.on_complete)](SimTime t) {
        if (a) a(t);
        if (b) b(t);
      };
      return;
    }
  }
  queue_.push_back(std::move(io));
}

std::optional<BlockIo> NoopScheduler::select(SimTime /*now*/, Lba /*head*/) {
  if (queue_.empty()) return std::nullopt;
  BlockIo io = std::move(queue_.front());
  queue_.pop_front();
  return io;
}

// ------------------------------------------------------------- deadline ----

void DeadlineScheduler::add(BlockIo io) {
  fifo_.emplace_back(io.arrival + read_expire_, io.lba);
  sorted_.emplace(io.lba, std::move(io));
}

BlockIo DeadlineScheduler::take(std::multimap<Lba, BlockIo>::iterator it) {
  BlockIo io = std::move(it->second);
  sorted_.erase(it);
  return io;
}

std::optional<BlockIo> DeadlineScheduler::select(SimTime now, Lba head) {
  if (sorted_.empty()) return std::nullopt;
  // Expired head-of-FIFO wins over the elevator sweep.
  while (!fifo_.empty() && sorted_.find(fifo_.front().second) == sorted_.end()) {
    fifo_.pop_front();  // already dispatched via the elevator
  }
  if (!fifo_.empty() && fifo_.front().first <= now) {
    auto it = sorted_.find(fifo_.front().second);
    fifo_.pop_front();
    return take(it);
  }
  auto it = sorted_.lower_bound(head);
  if (it == sorted_.end()) it = sorted_.begin();  // wrap: one-way elevator
  return take(it);
}

// --------------------------------------------------------- anticipatory ----

AnticipatoryScheduler::AnticipatoryScheduler(SimTime antic_expire, Lba near_sectors)
    : antic_expire_(antic_expire), near_sectors_(near_sectors) {}

void AnticipatoryScheduler::add(BlockIo io) {
  // Update the process think-time estimate: time from its last completion
  // to this submission.
  auto& proc = procs_[io.pid];
  if (proc.seen && io.arrival >= proc.last_complete) {
    const double think = static_cast<double>(io.arrival - proc.last_complete);
    proc.think_ewma_ns = proc.think_ewma_ns * 0.75 + think * 0.25;
  }
  fifo_.emplace_back(io.arrival + msec(500), io.lba);
  sorted_.emplace(io.lba, std::move(io));
}

BlockIo AnticipatoryScheduler::take(std::multimap<Lba, BlockIo>::iterator it) {
  BlockIo io = std::move(it->second);
  sorted_.erase(it);
  return io;
}

std::optional<std::multimap<Lba, BlockIo>::iterator> AnticipatoryScheduler::find_near(
    std::uint32_t pid, Lba from) {
  for (auto it = sorted_.lower_bound(from); it != sorted_.end(); ++it) {
    if (it->first > from + near_sectors_) break;
    if (it->second.pid == pid) return it;
  }
  return std::nullopt;
}

std::optional<BlockIo> AnticipatoryScheduler::select(SimTime now, Lba head) {
  if (anticipating_) {
    if (auto near = find_near(antic_pid_, antic_from_)) {
      anticipating_ = false;
      ++antic_hits_;
      return take(*near);
    }
    if (now < antic_deadline_) return std::nullopt;  // keep waiting
    anticipating_ = false;
    ++antic_timeouts_;
  }
  if (sorted_.empty()) return std::nullopt;
  while (!fifo_.empty() && sorted_.find(fifo_.front().second) == sorted_.end()) {
    fifo_.pop_front();
  }
  if (!fifo_.empty() && fifo_.front().first <= now) {
    auto it = sorted_.find(fifo_.front().second);
    fifo_.pop_front();
    return take(it);
  }
  auto it = sorted_.lower_bound(head);
  if (it == sorted_.end()) it = sorted_.begin();
  return take(it);
}

void AnticipatoryScheduler::on_complete(std::uint32_t pid, Lba end_lba, SimTime now) {
  auto& proc = procs_[pid];
  proc.last_complete = now;
  proc.seen = true;
  // Anticipate only when this process historically comes back fast enough
  // for the wait to pay off (and nothing from it is already queued nearby,
  // in which case select() will grab it immediately anyway).
  if (proc.think_ewma_ns < static_cast<double>(antic_expire_)) {
    anticipating_ = true;
    antic_pid_ = pid;
    antic_from_ = end_lba;
    antic_deadline_ = now + antic_expire_;
  }
}

// ------------------------------------------------------------------ cfq ----

void CfqScheduler::add(BlockIo io) {
  auto& q = queues_[io.pid];
  if (q.empty()) rr_.push_back(io.pid);
  q.push_back(std::move(io));
  ++total_;
}

std::optional<BlockIo> CfqScheduler::select(SimTime /*now*/, Lba /*head*/) {
  if (total_ == 0) return std::nullopt;
  // Continue the active pid's turn while it has quantum and work left.
  if (has_active_) {
    auto it = queues_.find(active_pid_);
    if (served_in_turn_ < quantum_ && it != queues_.end() && !it->second.empty()) {
      BlockIo io = std::move(it->second.front());
      it->second.pop_front();
      --total_;
      ++served_in_turn_;
      if (it->second.empty()) queues_.erase(it);
      return io;
    }
    has_active_ = false;
  }
  // Start the next pid's turn.
  while (!rr_.empty()) {
    const std::uint32_t pid = rr_.front();
    rr_.pop_front();
    auto it = queues_.find(pid);
    if (it == queues_.end() || it->second.empty()) continue;
    BlockIo io = std::move(it->second.front());
    it->second.pop_front();
    --total_;
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      rr_.push_back(pid);  // more work: rejoin the rotation
    }
    has_active_ = true;
    active_pid_ = pid;
    served_in_turn_ = 1;
    return io;
  }
  return std::nullopt;
}

std::unique_ptr<IoScheduler> make_io_scheduler(IoSchedKind kind) {
  switch (kind) {
    case IoSchedKind::kNoop: return std::make_unique<NoopScheduler>();
    case IoSchedKind::kDeadline: return std::make_unique<DeadlineScheduler>();
    case IoSchedKind::kAnticipatory: return std::make_unique<AnticipatoryScheduler>();
    case IoSchedKind::kCfq: return std::make_unique<CfqScheduler>();
  }
  return std::make_unique<NoopScheduler>();
}

}  // namespace sst::oskernel
