// Kernel read path model: page cache + per-process adaptive read-ahead +
// pluggable I/O scheduler over one block device. This is the substrate for
// the paper's Figure 2 (xdd over Ext3 on Linux 2.6.11) baseline.
//
// Mechanics modelled:
//  - 4 KB pages in a global LRU; reads hit, wait on in-flight pages, or
//    miss and go to the scheduler as merged contiguous runs.
//  - Per-process read-ahead: windows grow from 16 KB to 128 KB on
//    sequential access and are topped up asynchronously when the demand
//    cursor enters the second half of the current window (pipelining).
//  - One request outstanding at the device (2.6-era single dispatch),
//    which is what gives the anticipatory scheduler its leverage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/types.hpp"
#include "oskernel/iosched.hpp"
#include "exec/execution_context.hpp"

namespace sst::oskernel {

struct KernelIoParams {
  Bytes page_cache_bytes = 896 * MiB;  ///< the testbed's 1 GB minus kernel
  Bytes initial_readahead = 16 * KiB;
  Bytes max_readahead = 128 * KiB;  ///< 2.6-era default window cap
  IoSchedKind scheduler = IoSchedKind::kAnticipatory;
};

struct KernelIoStats {
  std::uint64_t reads = 0;
  std::uint64_t page_hits = 0;
  std::uint64_t page_misses = 0;   ///< demand pages needing new I/O
  std::uint64_t page_waits = 0;    ///< demand pages already in flight
  std::uint64_t ios_dispatched = 0;
  Bytes bytes_io = 0;
  Bytes bytes_readahead = 0;
  std::uint64_t pages_evicted = 0;
};

class KernelIo {
 public:
  static constexpr Bytes kPageSize = 4 * KiB;

  /// `device` must outlive the KernelIo.
  KernelIo(exec::ExecutionContext& simulator, blockdev::BlockDevice& device, KernelIoParams params);
  ~KernelIo();
  KernelIo(const KernelIo&) = delete;
  KernelIo& operator=(const KernelIo&) = delete;

  /// Buffered read: `cb` fires once every page of [offset, offset+length)
  /// is resident. `pid` identifies the issuing process for read-ahead state
  /// and scheduler fairness.
  void read(std::uint32_t pid, ByteOffset offset, Bytes length,
            std::function<void(SimTime)> cb);

  [[nodiscard]] const KernelIoStats& stats() const { return stats_; }
  [[nodiscard]] IoScheduler& scheduler() { return *sched_; }
  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }

 private:
  using PageIndex = std::uint64_t;

  struct PendingRead {
    std::size_t pages_remaining = 0;
    std::function<void(SimTime)> cb;
  };

  struct Page {
    bool present = false;  ///< false while the I/O is in flight
    std::list<PageIndex>::iterator lru_it{};
    bool in_lru = false;
    std::vector<std::shared_ptr<PendingRead>> waiters;
  };

  struct ReadaheadState {
    ByteOffset expected_next = 0;
    Bytes window = 0;
    ByteOffset ra_end = 0;  ///< read-ahead issued up to here
    bool active = false;
  };

  void touch_lru(PageIndex page, Page& state);
  void evict_if_needed();
  /// Queue an I/O for pages [first, last] that are not resident/in-flight;
  /// contiguous missing pages become single scheduler requests.
  void issue_pages(std::uint32_t pid, PageIndex first, PageIndex last, bool readahead,
                   const std::shared_ptr<PendingRead>& waiter);
  void run_readahead(std::uint32_t pid, ByteOffset offset, Bytes length);
  void try_dispatch();
  void on_io_complete(PageIndex first, PageIndex last, std::uint32_t pid, SimTime now);

  exec::ExecutionContext& sim_;
  blockdev::BlockDevice& device_;
  KernelIoParams params_;
  std::unique_ptr<IoScheduler> sched_;
  std::size_t max_pages_;

  std::unordered_map<PageIndex, Page> pages_;
  std::list<PageIndex> lru_;  ///< front = most recent
  std::map<std::uint32_t, ReadaheadState> readahead_;

  bool device_busy_ = false;
  Lba head_lba_ = 0;
  exec::TaskHandle retry_event_;
  KernelIoStats stats_;
};

}  // namespace sst::oskernel
