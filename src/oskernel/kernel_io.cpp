#include "oskernel/kernel_io.hpp"

#include <algorithm>
#include <cassert>

namespace sst::oskernel {

KernelIo::KernelIo(exec::ExecutionContext& simulator, blockdev::BlockDevice& device,
                   KernelIoParams params)
    : sim_(simulator),
      device_(device),
      params_(params),
      sched_(make_io_scheduler(params.scheduler)),
      max_pages_(std::max<std::size_t>(16, params.page_cache_bytes / kPageSize)) {}

KernelIo::~KernelIo() { retry_event_.cancel(); }

void KernelIo::touch_lru(PageIndex page, Page& state) {
  if (state.in_lru) lru_.erase(state.lru_it);
  lru_.push_front(page);
  state.lru_it = lru_.begin();
  state.in_lru = true;
}

void KernelIo::evict_if_needed() {
  while (pages_.size() > max_pages_ && !lru_.empty()) {
    const PageIndex victim = lru_.back();
    const auto it = pages_.find(victim);
    assert(it != pages_.end());
    // LRU only holds present pages; in-flight pages are not evictable.
    lru_.pop_back();
    pages_.erase(it);
    ++stats_.pages_evicted;
  }
}

void KernelIo::read(std::uint32_t pid, ByteOffset offset, Bytes length,
                    std::function<void(SimTime)> cb) {
  assert(length > 0);
  assert(offset + length <= device_.capacity());
  ++stats_.reads;

  const PageIndex first = offset / kPageSize;
  const PageIndex last = (offset + length - 1) / kPageSize;

  auto pending = std::make_shared<PendingRead>();
  pending->cb = std::move(cb);
  pending->pages_remaining = 0;

  for (PageIndex p = first; p <= last; ++p) {
    auto it = pages_.find(p);
    if (it != pages_.end()) {
      if (it->second.present) {
        ++stats_.page_hits;
        touch_lru(p, it->second);
      } else {
        ++stats_.page_waits;
        ++pending->pages_remaining;
        it->second.waiters.push_back(pending);
      }
    }
  }
  // Demand-issue the missing pages (contiguous runs become one request).
  issue_pages(pid, first, last, /*readahead=*/false, pending);

  run_readahead(pid, offset, length);
  evict_if_needed();

  if (pending->pages_remaining == 0) {
    // Fully cached: complete on the next simulator step (never inline, so
    // callers can treat completion as always asynchronous).
    sim_.schedule_after(0, [pending, this]() {
      if (pending->cb) pending->cb(sim_.now());
    });
  }
  try_dispatch();
}

void KernelIo::issue_pages(std::uint32_t pid, PageIndex first, PageIndex last, bool readahead,
                           const std::shared_ptr<PendingRead>& waiter) {
  PageIndex run_start = 0;
  bool in_run = false;
  auto flush_run = [&](PageIndex run_end) {
    if (!in_run) return;
    in_run = false;
    BlockIo io;
    io.lba = run_start * (kPageSize / kSectorSize);
    io.sectors = (run_end - run_start + 1) * (kPageSize / kSectorSize);
    io.pid = pid;
    io.arrival = sim_.now();
    io.on_complete = [this, run_start, run_end, pid](SimTime t) {
      on_io_complete(run_start, run_end, pid, t);
    };
    ++stats_.ios_dispatched;
    stats_.bytes_io += sectors_to_bytes(io.sectors);
    if (readahead) stats_.bytes_readahead += sectors_to_bytes(io.sectors);
    sched_->add(std::move(io));
  };

  for (PageIndex p = first; p <= last; ++p) {
    auto it = pages_.find(p);
    if (it != pages_.end()) {
      flush_run(p - 1);
      continue;  // resident or already in flight
    }
    if (!readahead) ++stats_.page_misses;
    Page fresh;
    fresh.present = false;
    if (waiter) {
      ++waiter->pages_remaining;
      fresh.waiters.push_back(waiter);
    }
    pages_.emplace(p, std::move(fresh));
    if (!in_run) {
      run_start = p;
      in_run = true;
    }
  }
  flush_run(last);
}

void KernelIo::run_readahead(std::uint32_t pid, ByteOffset offset, Bytes length) {
  if (params_.max_readahead == 0) return;
  auto& state = readahead_[pid];
  const ByteOffset end = offset + length;

  const bool sequential = state.active && offset == state.expected_next;
  if (!sequential) {
    state.window = params_.initial_readahead;
    state.ra_end = end;
    state.active = true;
  }
  state.expected_next = end;

  // Top up when the demand cursor eats into the second half of the issued
  // window; each top-up doubles the window (up to the cap), so a steady
  // sequential reader keeps ~window bytes in flight ahead of itself.
  const Bytes ahead = state.ra_end > end ? state.ra_end - end : 0;
  if (ahead <= state.window / 2) {
    const ByteOffset target =
        std::min<ByteOffset>(end + state.window, device_.capacity());
    if (target > state.ra_end) {
      const PageIndex first = state.ra_end / kPageSize;
      const PageIndex last = (target - 1) / kPageSize;
      issue_pages(pid, first, last, /*readahead=*/true, nullptr);
      state.ra_end = target;
    }
    state.window = std::min<Bytes>(state.window * 2, params_.max_readahead);
  }
}

void KernelIo::try_dispatch() {
  if (device_busy_) return;
  retry_event_.cancel();
  auto io = sched_->select(sim_.now(), head_lba_);
  if (!io.has_value()) {
    const SimTime hint = sched_->wakeup_hint();
    if (!sched_->empty() && hint != kSimTimeMax) {
      retry_event_ = sim_.schedule_at(std::max(hint, sim_.now()), [this]() { try_dispatch(); });
    }
    return;
  }
  device_busy_ = true;
  blockdev::BlockRequest req;
  req.offset = sectors_to_bytes(io->lba);
  req.length = sectors_to_bytes(io->sectors);
  req.op = IoOp::kRead;
  const std::uint32_t pid = io->pid;
  const Lba end_lba = io->lba + io->sectors;
  req.on_complete = [this, cb = std::move(io->on_complete), pid, end_lba](SimTime t) {
    device_busy_ = false;
    head_lba_ = end_lba;
    sched_->on_complete(pid, end_lba, t);
    if (cb) cb(t);
    try_dispatch();
  };
  device_.submit(std::move(req));
}

void KernelIo::on_io_complete(PageIndex first, PageIndex last, std::uint32_t /*pid*/,
                              SimTime now) {
  for (PageIndex p = first; p <= last; ++p) {
    auto it = pages_.find(p);
    if (it == pages_.end()) continue;  // evicted while in flight (rare)
    Page& page = it->second;
    page.present = true;
    touch_lru(p, page);
    for (auto& waiter : page.waiters) {
      assert(waiter->pages_remaining > 0);
      if (--waiter->pages_remaining == 0 && waiter->cb) {
        waiter->cb(now);
        waiter->cb = nullptr;
      }
    }
    page.waiters.clear();
  }
  evict_if_needed();
}

}  // namespace sst::oskernel
