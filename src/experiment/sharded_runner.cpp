// Parallel experiment runner: the deployment splits into per-controller
// device-stack shards (each with its own Simulator, node slice, scheduler
// and stack wrappers), advanced in lockstep by sim::ShardedEngine's
// conservative-lookahead barrier.
//
// Placement: every shard owns its slice end-to-end — topology, storage
// server, fault injector, tracer, sampler — so within a barrier window no
// state is shared between worker threads. All stream clients live on shard
// 0 (they model hosts, not disks, and keeping them together preserves the
// spec-order determinism of their event interleaving); their requests reach
// the owning shard over a modelled interconnect of exactly one lookahead
// per direction. That hop applies to shard-0-local devices too, so every
// stream pays the same round-trip tax and per-stream fairness comparisons
// stay meaningful.
//
// Faithfulness: a sharded run is NOT event-for-event identical to the
// single-threaded run of the same config — the interconnect hop shifts
// arrival phasing and each slice schedules against its own dispatch-set /
// memory share. It is a deterministic function of (config, seed, shard
// count): repeated runs reproduce identical metrics byte-for-byte.
#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "experiment/aggregate.hpp"
#include "experiment/runner.hpp"
#include "experiment/sharding.hpp"
#include "sim/sharded.hpp"

namespace sst::experiment {

namespace {

/// Everything one shard owns. Stable addresses: the vector is sized once.
struct ShardState {
  std::unique_ptr<node::Topology> topology;
  std::unique_ptr<core::StorageServer> server;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  workload::RequestSink entry;  ///< top of the slice's stack, runs on its shard
  /// Attribution state for requests homed on this shard (acquire and fold
  /// both run on the home shard; stamps on the owning shard are ordered by
  /// the barrier). Private per shard like the tracer; merged after the run.
  std::unique_ptr<obs::LatencyAttributor> attributor;
  std::unique_ptr<obs::WindowedLatencyRecorder> slo_windows;
  /// Private per-shard flight ring (single-writer); merged after the run.
  std::unique_ptr<obs::FlightRecorder> flight;
};

/// Shared state for a shard's rolling-percentile gauges (see runner.cpp).
struct RollingLatency {
  stats::LatencyHistogram prev;
  stats::LatencyHistogram delta;
};

}  // namespace

ShardPlan plan_shards(const node::TopologySpec& topology, std::uint32_t requested,
                      SimTime lookahead_override) {
  ShardPlan plan;
  plan.requested = std::max<std::uint32_t>(1, requested);
  plan.lookahead = lookahead_override > 0
                       ? lookahead_override
                       : (topology.stack.network.has_value()
                              ? std::max(kDefaultShardLookahead,
                                         topology.stack.network->latency)
                              : kDefaultShardLookahead);

  const std::uint32_t controllers = topology.node.num_controllers;
  const std::uint32_t dpc = topology.node.disks_per_controller;
  std::uint32_t shards = std::min(plan.requested, controllers);
  // One striped volume spans every device: the raid layer is a single
  // coupling point, so striping always runs single-shard.
  if (topology.stack.raid.kind == io::RaidSpec::Kind::kStripe) shards = 1;

  const std::uint32_t mirror_ways =
      topology.stack.raid.kind == io::RaidSpec::Kind::kMirror
          ? topology.stack.raid.mirror_ways
          : 1;
  for (; shards > 1; --shards) {
    // Near-even contiguous controller ranges; accept this count only when
    // no mirror group straddles a boundary.
    bool ok = true;
    for (std::uint32_t k = 0; k < shards && ok; ++k) {
      const std::uint32_t begin = k * controllers / shards;
      const std::uint32_t end = (k + 1) * controllers / shards;
      ok = ((end - begin) * dpc) % mirror_ways == 0;
    }
    if (ok) break;
  }

  for (std::uint32_t k = 0; k < shards; ++k) {
    ShardSlice slice;
    slice.ctrl_begin = k * controllers / shards;
    slice.ctrl_count = (k + 1) * controllers / shards - slice.ctrl_begin;
    slice.dev_begin = slice.ctrl_begin * dpc;
    slice.dev_count = slice.ctrl_count * dpc;
    slice.logical_begin = slice.dev_begin / mirror_ways;
    slice.logical_count = slice.dev_count / mirror_ways;
    plan.slices.push_back(slice);
  }
  return plan;
}

ExperimentResult run_experiment_sharded(const ExperimentConfig& config,
                                        const ShardPlan& plan) {
  const std::uint32_t num_shards = plan.shard_count();
  const SimTime hop = plan.lookahead;  // one-way interconnect latency
  assert(num_shards > 1 && hop > 0);
  sim::ShardedEngine engine(num_shards, hop);
  const std::uint32_t total_logical = config.topology.logical_device_count();

  const bool attribution =
      config.attribution || config.slo.enabled() || config.flight != nullptr;

  std::vector<ShardState> shards(num_shards);
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    const ShardSlice& slice = plan.slices[k];
    sim::Simulator& sim = engine.shard(k);
    ShardState& shard = shards[k];
    shard.topology = std::make_unique<node::Topology>(
        sim, config.topology.shard_slice(slice.ctrl_begin, slice.ctrl_count));
    io::DeviceStack& stack = shard.topology->stack();
    const std::vector<blockdev::BlockDevice*>& devices = stack.devices();

    if (config.scheduler.has_value()) {
      shard.server = std::make_unique<core::StorageServer>(
          sim, devices,
          slice_scheduler_params(*config.scheduler, slice.logical_count, total_logical));
    }
    if (config.tracer != nullptr) {
      // Shards record into private tracers (no cross-thread appends) that
      // merge into the caller's tracer after the run.
      shard.tracer = std::make_unique<obs::Tracer>();
      shard.topology->attach_tracer(shard.tracer.get());
      if (shard.server) shard.server->set_tracer(shard.tracer.get());
    }
    if (attribution) {
      shard.attributor = std::make_unique<obs::LatencyAttributor>();
      if (config.slo.enabled()) {
        shard.slo_windows =
            std::make_unique<obs::WindowedLatencyRecorder>(config.slo.window);
        shard.attributor->attach_window(shard.slo_windows.get());
      }
    }
    if (config.flight != nullptr) {
      shard.flight = std::make_unique<obs::FlightRecorder>(config.flight->capacity());
      shard.flight->set_shard(k);
      if (shard.server) shard.server->set_flight_recorder(shard.flight.get());
    }

    workload::RequestSink sink;
    if (shard.server) {
      sink = [srv = shard.server.get()](core::ClientRequest req) {
        srv->submit(std::move(req));
      };
    } else {
      sink = [&devices](core::ClientRequest req) {
        blockdev::BlockRequest io;
        io.offset = req.offset;
        io.length = req.length;
        io.op = req.op;
        io.id = req.id;
        io.data = req.data;
        io.on_complete = std::move(req.on_complete);
        devices.at(req.device)->submit(std::move(io));
      };
    }
    shard.entry = stack.wrap_sink(std::move(sink));
  }

  // Clients: round-robin across shards by spec ordinal — a pure function
  // of (spec order, shard count), so placement is deterministic and client
  // event work spreads evenly instead of serializing on one shard. Each
  // client's route sink runs on its home shard, forwards the request one
  // hop to the owning shard, and splices a return hop into on_complete —
  // both directions exactly `hop` (even for home == owner, where the post
  // degenerates to a local schedule), so every stream pays the same
  // round-trip tax and cross-shard posts satisfy the lookahead contract by
  // construction.
  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(config.streams.size());
  std::vector<std::vector<const workload::StreamClient*>> residents(num_shards);
  std::vector<std::uint32_t> shard_ordinal(num_shards, 0);
  for (std::size_t i = 0; i < config.streams.size(); ++i) {
    const workload::StreamSpec& spec = config.streams[i];
    assert(spec.device < total_logical);
    const std::uint32_t k = plan.shard_of_logical(spec.device);
    const std::uint32_t home = static_cast<std::uint32_t>(i % num_shards);
    sim::Simulator& home_sim = engine.shard(home);
    workload::StreamSpec local = spec;
    local.device = spec.device - plan.slices[k].logical_begin;
    if (local.seed == 0) {
      local.seed =
          stream_seed(shard_workload_seed(config.workload_seed, k), shard_ordinal[k]);
    }
    ++shard_ordinal[k];
    workload::RequestSink route = [&engine, hs = &home_sim, home, k, hop,
                                   entry = &shards[k].entry](core::ClientRequest req) {
      IoCompletion done = std::move(req.on_complete);
      req.on_complete = [&engine, hs, home, k, hop,
                         done = std::move(done)](SimTime completed_at,
                                                 IoStatus status) mutable {
        engine.post(k, home, completed_at + hop,
                    [hs, done = std::move(done), status]() mutable {
                      done(hs->now(), status);
                    });
      };
      engine.post(home, k, hs->now() + hop,
                  [entry, req = std::move(req)]() mutable { (*entry)(std::move(req)); });
    };
    if (attribution) {
      // Outermost wrapper, so it runs entirely on the client's home shard:
      // the issue stamp precedes the interconnect hop and the fold — being
      // applied first — fires last, after the return hop delivers the
      // completion back home. The rid is keyed on the global spec ordinal,
      // so ids are invariant across shard counts.
      route = [attr = shards[home].attributor.get(),
               flight = shards[home].flight.get(), hs = &home_sim, base = std::move(route),
               ordinal = static_cast<std::uint32_t>(i),
               seq = std::uint64_t{0}](core::ClientRequest req) mutable {
        obs::RequestTrace* trace =
            attr->acquire(obs::make_request_id(ordinal, ++seq), hs->now());
        req.trace = trace;
        if (flight != nullptr) {
          flight->record(obs::FlightCode::kIssue, hs->now(), trace->rid, req.device,
                         req.offset);
        }
        req.on_complete = [attr, flight, hs, trace,
                           prev = std::move(req.on_complete)](SimTime done,
                                                              IoStatus status) {
          const bool ok = io_ok(status);
          if (flight != nullptr) {
            flight->record(obs::FlightCode::kComplete, hs->now(), trace->rid,
                           done >= trace->issue ? done - trace->issue : 0,
                           ok ? 1 : 0);
          }
          attr->complete(trace, done, ok);
          if (prev) prev(done, status);
        };
        base(std::move(req));
      };
    }
    clients.push_back(std::make_unique<workload::StreamClient>(
        home_sim, std::move(route), local,
        shards[k].topology->device_capacity(local.device)));
    residents[home].push_back(clients.back().get());
  }
  for (auto& client : clients) client->start();

  if (config.sample_interval > 0) {
    for (std::uint32_t k = 0; k < num_shards; ++k) {
      shards[k].sampler =
          std::make_unique<obs::TimeSeriesSampler>(engine.shard(k), config.sample_interval);
    }
    // Gauges sample shard-local state on the shard's own thread. Windowed
    // MB/s lives with each shard's resident clients (summed into a global
    // "mbps" column after the merge); per-disk queue depths keep their
    // global names; scheduler gauges get a shard prefix.
    for (std::uint32_t k = 0; k < num_shards; ++k) {
      ShardState& shard = shards[k];
      const std::string prefix = "shard" + std::to_string(k) + ".";
      if (!residents[k].empty()) {
        shard.sampler->add_gauge(
            prefix + "mbps",
            [local = residents[k], prev_bytes = Bytes{0}, prev_time = SimTime{0},
             shard_sim = &engine.shard(k)]() mutable {
              Bytes total = 0;
              for (const auto* client : local) {
                total += client->stats().throughput.total_bytes();
              }
              const SimTime now = shard_sim->now();
              const Bytes delta = total >= prev_bytes ? total - prev_bytes : total;
              const double mbps =
                  now > prev_time ? mb_per_sec(delta, now - prev_time) : 0.0;
              prev_bytes = total;
              prev_time = now;
              return mbps;
            });
        // Rolling per-tick percentiles over this shard's resident clients;
        // the p50 gauge (sampled first) rebuilds the shared delta.
        auto rolling = std::make_shared<RollingLatency>();
        shard.sampler->add_gauge(prefix + "p50_ms", [local = residents[k], rolling]() {
          stats::LatencyHistogram cur;
          for (const auto* client : local) cur.merge(client->stats().latency);
          if (cur.count() < rolling->prev.count()) rolling->prev.reset();
          rolling->delta = cur;
          rolling->delta.subtract(rolling->prev);
          rolling->prev = std::move(cur);
          return rolling->delta.p50_ms();
        });
        shard.sampler->add_gauge(prefix + "p99_ms",
                                 [rolling]() { return rolling->delta.p99_ms(); });
        shard.sampler->add_gauge(prefix + "p999_ms",
                                 [rolling]() { return rolling->delta.p999_ms(); });
      }
      if (shard.server) {
        // Same scheduler gauge set as the single-threaded runner, uniformly
        // under this shard's prefix.
        core::StreamScheduler& sched = shard.server->scheduler();
        shard.sampler->add_gauge(prefix + "dispatch_set", [&sched]() {
          return static_cast<double>(sched.dispatched_count());
        });
        shard.sampler->add_gauge(prefix + "candidates", [&sched]() {
          return static_cast<double>(sched.candidate_count());
        });
        shard.sampler->add_gauge(prefix + "buffered_streams", [&sched]() {
          return static_cast<double>(sched.buffered_count());
        });
        shard.sampler->add_gauge(prefix + "streams", [&sched]() {
          return static_cast<double>(sched.stream_count());
        });
        shard.sampler->add_gauge(prefix + "pool_mb", [&sched]() {
          return static_cast<double>(sched.pool().committed()) / 1e6;
        });
        shard.sampler->add_gauge(prefix + "extent_mb", [&sched]() {
          return static_cast<double>(sched.pool().extent_slab().live_bytes()) / 1e6;
        });
        shard.sampler->add_gauge(prefix + "degraded_disks", [&sched]() {
          return static_cast<double>(sched.failed_device_count());
        });
      }
      node::StorageNode& node = shard.topology->node();
      for (std::size_t d = 0; d < node.device_count(); ++d) {
        const std::size_t global = plan.slices[k].dev_begin + d;
        shard.sampler->add_gauge("disk" + std::to_string(global) + ".queue_depth",
                                 [&node, d]() {
                                   return static_cast<double>(node.disk_of(d).queue_depth());
                                 });
      }
      shard.sampler->start();
    }
  }

  engine.run_until(config.warmup);
  for (auto& client : clients) client->begin_measurement();
  for (auto& shard : shards) {
    if (shard.attributor) shard.attributor->begin_measurement();
  }
  const SimTime t0 = engine.now();
  const SimTime t1 = t0 + config.measure;
  engine.run_until(t1);

  ExperimentResult result;
  double min_mbps = 1e18;
  double max_mbps = 0.0;
  result.stream_mbps.reserve(clients.size());
  for (const auto& client : clients) {
    const auto& cs = client->stats();
    const double mbps = cs.throughput.mbps(t0, t1);
    result.stream_mbps.push_back(mbps);
    result.total_mbps += mbps;
    min_mbps = std::min(min_mbps, mbps);
    max_mbps = std::max(max_mbps, mbps);
    result.requests_completed += cs.completed;
    result.client_errors += cs.errors;
    result.latency.merge(cs.latency);
  }
  result.min_stream_mbps = clients.empty() ? 0.0 : min_mbps;
  result.max_stream_mbps = max_mbps;

  std::uint64_t min_events = ~0ULL;
  std::uint64_t max_events = 0;
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    ShardState& shard = shards[k];
    node::StorageNode& node = shard.topology->node();
    io::DeviceStack& stack = shard.topology->stack();
    add_disk_totals(result.disk_totals, node.disk_totals());
    add_controller_totals(result.controller_totals, node.controller_totals());
    if (shard.server) {
      add_scheduler_stats(result.scheduler_stats, shard.server->scheduler().stats());
      add_server_stats(result.server_stats, shard.server->stats());
      add_classifier_stats(result.classifier_stats, shard.server->classifier().stats());
      add_staging_stats(result.staging_stats, shard.server->scheduler().staging_stats());
      // Shards model parallel hosts: the binding figure is the busiest
      // shard's CPU, not a sum that could read past 100%.
      result.host_cpu_utilization =
          std::max(result.host_cpu_utilization,
                   shard.server->scheduler().cpu().stats().utilization(t1));
      result.peak_buffer_memory +=
          shard.server->scheduler().pool().stats().peak_committed;
      result.devices_failed += shard.server->scheduler().failed_device_count();
    }
    if (stack.injector() != nullptr) {
      add_fault_stats(result.fault_stats, stack.injector()->stats());
    }
    if (stack.remote() != nullptr) {
      add_net_fault_stats(result.net_fault_stats, stack.remote()->fault_stats());
    }
    add_retry_stats(result.retry_stats, stack.retry_totals());
    add_mirror_stats(result.mirror_stats, stack.mirror_totals());
    const std::uint64_t events = engine.shard(k).executed_events();
    min_events = std::min(min_events, events);
    max_events = std::max(max_events, events);
  }
  result.raid_kind = config.topology.stack.raid.kind;
  result.sim_events_dispatched = engine.executed_events();
  result.sim_wheel_cascades = engine.wheel_cascades();

  result.shard_summary.shards = num_shards;
  result.shard_summary.requested = plan.requested;
  result.shard_summary.lookahead = hop;
  result.shard_summary.windows = engine.stats().windows;
  result.shard_summary.cross_shard_events = engine.stats().cross_shard_events;
  result.shard_summary.horizon_violations = engine.stats().horizon_violations;
  result.shard_summary.min_shard_events = min_events;
  result.shard_summary.max_shard_events = max_events;

  if (config.tracer != nullptr) {
    for (std::uint32_t k = 0; k < num_shards; ++k) {
      const ShardSlice slice = plan.slices[k];
      const std::uint32_t shard_id = k;
      // Shift each category of the slice-local track-id layout back into
      // global coordinates. Stream ids are scheduler-local per shard; they
      // spread at 0x4000 per shard inside the 16-bit stream window, which
      // only collides past 16k streams per shard (cosmetic, ids only).
      config.tracer->merge_from(*shards[k].tracer, [slice, shard_id](std::uint32_t tid) {
        if (tid >= 0x30000) {
          return 0x30000 + (((tid - 0x30000) + shard_id * 0x4000) & 0xFFFFU);
        }
        if (tid >= 0x20000) return tid + slice.logical_begin;
        if (tid >= 0x10000) return tid + slice.ctrl_begin;
        if (tid >= 0x100) return tid + slice.dev_begin;
        if (tid == obs::kSchedulerTrack) return obs::kSchedulerTrack + shard_id;
        return tid;
      });
    }
  }

  if (config.sample_interval > 0) {
    for (auto& shard : shards) shard.sampler->stop();
    // Samplers tick in lockstep (same interval, same aligned clocks), so
    // the per-shard series concatenate column-wise on shard 0's timeline.
    result.timeseries = shards[0].sampler->take();
    for (std::uint32_t k = 1; k < num_shards; ++k) {
      obs::TimeSeries series = shards[k].sampler->take();
      assert(series.times.size() == result.timeseries.times.size());
      for (auto& name : series.names) {
        result.timeseries.names.push_back(std::move(name));
      }
      const std::size_t rows =
          std::min(series.rows.size(), result.timeseries.rows.size());
      for (std::size_t row = 0; row < rows; ++row) {
        auto& dst = result.timeseries.rows[row];
        dst.insert(dst.end(), series.rows[row].begin(), series.rows[row].end());
      }
    }
    // Node-wide MB/s is the row-wise sum of the per-shard client gauges —
    // same name and meaning as the single-threaded runner's column.
    std::vector<std::size_t> mbps_cols;
    for (std::size_t col = 0; col < result.timeseries.names.size(); ++col) {
      const std::string& name = result.timeseries.names[col];
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".mbps") == 0) {
        mbps_cols.push_back(col);
      }
    }
    if (!mbps_cols.empty()) {
      result.timeseries.names.push_back("mbps");
      for (auto& row : result.timeseries.rows) {
        double total = 0.0;
        for (const std::size_t col : mbps_cols) total += row[col];
        row.push_back(total);
      }
    }
  }

  obs::WindowedLatencyRecorder slo_windows(config.slo.window);
  if (attribution) {
    result.breakdown.enabled = true;
    for (std::uint32_t k = 0; k < num_shards; ++k) {
      ShardState& shard = shards[k];
      result.breakdown.merge_from(shard.attributor->breakdown());
      if (shard.slo_windows) slo_windows.merge_from(*shard.slo_windows);
      node::StorageNode& node = shard.topology->node();
      for (std::size_t d = 0; d < node.device_count(); ++d) {
        result.breakdown.disk_queue.merge(node.disk_of(d).queue_wait());
        result.breakdown.disk_service.merge(node.disk_of(d).service_time());
      }
      if (shard.topology->stack().remote() != nullptr) {
        result.breakdown.net_response.merge(
            shard.topology->stack().remote()->response_transit());
      }
    }
  }
  result.slo_report = obs::SloEngine::evaluate(config.slo, slo_windows, result.latency);
  if (config.flight != nullptr) {
    // Stitch the per-shard rings into the caller's recorder: one journal
    // ordered by (ts, shard, seq), keeping the newest capacity() events.
    for (auto& shard : shards) config.flight->merge_from(*shard.flight);
    if (result.slo_report.enabled && !result.slo_report.pass) {
      config.flight->record(obs::FlightCode::kSloBreach, engine.now(), 0,
                            result.slo_report.windows_breached,
                            result.slo_report.windows_evaluated);
    }
  }
  return result;
}

}  // namespace sst::experiment
