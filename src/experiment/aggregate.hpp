// Stat-merge helpers shared by the parallel runners: the sharded sim engine
// (run_experiment_sharded) and the multi-reactor real engine
// (run_experiment_real with backend.reactors > 1) both split a deployment
// into slices that each own their stats, then fold the slices back into one
// ExperimentResult with these adders.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "experiment/runner.hpp"

namespace sst::experiment {

inline void add_disk_totals(node::NodeDiskTotals& a, const node::NodeDiskTotals& b) {
  a.bytes_requested += b.bytes_requested;
  a.bytes_from_media += b.bytes_from_media;
  a.commands += b.commands;
  a.cache_hits += b.cache_hits;
  a.cache_misses += b.cache_misses;
  a.wasted_prefetch_sectors += b.wasted_prefetch_sectors;
  a.seek_time += b.seek_time;
  a.busy_time += b.busy_time;
}

inline void add_controller_totals(node::NodeControllerTotals& a,
                                  const node::NodeControllerTotals& b) {
  a.commands += b.commands;
  a.bytes_to_host += b.bytes_to_host;
  a.bus_busy_time += b.bus_busy_time;
  a.cache_hits += b.cache_hits;
  a.cache_misses += b.cache_misses;
  a.cache_evictions += b.cache_evictions;
  a.prefetched_bytes += b.prefetched_bytes;
  a.wasted_prefetch_bytes += b.wasted_prefetch_bytes;
}

inline void add_scheduler_stats(core::SchedulerStats& a, const core::SchedulerStats& b) {
  a.streams_created += b.streams_created;
  a.streams_retired += b.streams_retired;
  a.disk_reads += b.disk_reads;
  a.bytes_prefetched += b.bytes_prefetched;
  a.client_completions += b.client_completions;
  a.bytes_served += b.bytes_served;
  a.buffer_hits += b.buffer_hits;
  a.rotations += b.rotations;
  a.dispatch_stalls += b.dispatch_stalls;
  a.gc_buffers_reclaimed += b.gc_buffers_reclaimed;
  a.gc_bytes_wasted += b.gc_bytes_wasted;
  a.gc_streams_retired += b.gc_streams_retired;
  a.fallback_direct_reads += b.fallback_direct_reads;
  a.escalated_reads += b.escalated_reads;
  a.prefetch_errors += b.prefetch_errors;
  a.streams_evicted += b.streams_evicted;
  a.requests_failed += b.requests_failed;
}

inline void add_server_stats(core::ServerStats& a, const core::ServerStats& b) {
  a.requests += b.requests;
  a.sequential_requests += b.sequential_requests;
  a.direct_reads += b.direct_reads;
  a.direct_writes += b.direct_writes;
  a.rejected_requests += b.rejected_requests;
}

inline void add_classifier_stats(core::ClassifierStats& a, const core::ClassifierStats& b) {
  a.requests_seen += b.requests_seen;
  a.regions_allocated += b.regions_allocated;
  a.regions_collected += b.regions_collected;
  a.streams_detected += b.streams_detected;
  a.bitmap_bytes += b.bitmap_bytes;
}

inline void add_staging_stats(core::StagingStats& a, const core::StagingStats& b) {
  a.bytes_copied += b.bytes_copied;
  a.zero_copy_hits += b.zero_copy_hits;
}

inline void add_fault_stats(fault::FaultStats& a, const fault::FaultStats& b) {
  a.commands_seen += b.commands_seen;
  a.media_errors += b.media_errors;
  a.persistent_errors += b.persistent_errors;
  a.hangs += b.hangs;
  a.spikes += b.spikes;
}

inline void add_net_fault_stats(net::NetFaultStats& a, const net::NetFaultStats& b) {
  a.dropped += b.dropped;
  a.spiked += b.spiked;
  a.transport_errors += b.transport_errors;
}

inline void add_retry_stats(core::RetryStats& a, const core::RetryStats& b) {
  a.commands += b.commands;
  a.retries_total += b.retries_total;
  a.timeouts += b.timeouts;
  a.media_errors += b.media_errors;
  a.recovered += b.recovered;
  a.giveups += b.giveups;
  a.backoff_time += b.backoff_time;
}

inline void add_mirror_stats(raid::MirrorStats& a, const raid::MirrorStats& b) {
  a.reads += b.reads;
  a.writes += b.writes;
  a.member_errors += b.member_errors;
  a.failovers += b.failovers;
  a.degraded_reads += b.degraded_reads;
  a.degraded_writes += b.degraded_writes;
  a.read_failures += b.read_failures;
  a.write_failures += b.write_failures;
}

/// The slice's proportional share of the host scheduler resources. The
/// dispatch set and the buffer budget both scale with the slice's share of
/// the logical devices (rounded, floor 1 / one read-ahead), then the
/// budget is raised to whatever the scaled dispatch set needs so the
/// params still validate.
inline core::SchedulerParams slice_scheduler_params(const core::SchedulerParams& params,
                                                    std::uint32_t slice_devices,
                                                    std::uint32_t total_devices) {
  core::SchedulerParams scaled = params;
  const double share =
      static_cast<double>(slice_devices) / static_cast<double>(total_devices);
  if (params.dispatch_set_size > 0) {
    scaled.dispatch_set_size = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(params.dispatch_set_size * share)));
  }
  scaled.memory_budget = std::max<Bytes>(
      static_cast<Bytes>(std::llround(static_cast<double>(params.memory_budget) * share)),
      scaled.read_ahead);
  const Bytes dispatch_need = static_cast<Bytes>(scaled.dispatch_set_size) *
                              scaled.read_ahead * scaled.requests_per_residency;
  scaled.memory_budget = std::max(scaled.memory_budget, dispatch_need);
  return scaled;
}

}  // namespace sst::experiment
