// Real-I/O experiment runner: the simulation harness's wiring — scheduler,
// server, closed-loop stream clients, attribution, SLO windows — executed
// against real files through io_uring block devices on a wall-clock
// execution context. Built to answer one question: does the stream
// scheduler's benefit survive contact with a real I/O path? (See
// bench/calibration.cpp for the sim-vs-real comparison harness.)
//
// Parallelism mirrors the sharded sim engine (PR 6): backend.reactors = N
// carves the logical devices into contiguous per-reactor groups, each with
// its own RealContext, rings, scheduler slice and resident clients on a
// dedicated thread. Streams pin to devices, so — unlike the sim shards —
// no cross-thread trampoline is needed: each client lives entirely on the
// reactor that owns its device. Group outcomes are plain data merged on
// the calling thread with the same adders run_experiment_sharded uses.
// backend.reactors = 1 (the default) runs the whole experiment inline on
// the calling thread, preserving the single-reactor behaviour exactly.
//
// Scope: the flat device view only. Fault injection, raid, the simulated
// network link and the sharded engine all model hardware — the real backend
// has real hardware, so configurations enabling them are rejected rather
// than half-simulated.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/sharding.hpp"

#if defined(SST_WITH_URING)
#include <sys/stat.h>

#include "blockdev/uring_block_device.hpp"
#include "common/thread_pool.hpp"
#include "exec/real_context.hpp"
#include "experiment/aggregate.hpp"
#endif

namespace sst::experiment {

bool real_backend_available() {
#if defined(SST_WITH_URING)
  return true;
#else
  return false;
#endif
}

#if !defined(SST_WITH_URING)

ExperimentResult run_experiment_real(const ExperimentConfig& config) {
  (void)config;
  throw std::runtime_error(
      "backend.kind=real requires a build with -DSST_WITH_URING=ON");
}

#else

namespace {

/// Recycling allocator for the raw-client data path (no scheduler staging
/// in front of the device): buffers are 4096-aligned so O_DIRECT stays
/// usable, and recycled per size so the closed-loop steady state stops
/// allocating after the first lap.
class ScratchBuffers {
 public:
  std::byte* acquire(Bytes size) {
    auto& free_list = free_[size];
    if (!free_list.empty()) {
      std::byte* buffer = free_list.back();
      free_list.pop_back();
      return buffer;
    }
    void* mem = std::aligned_alloc(4096, size);
    if (mem == nullptr) throw std::bad_alloc();
    owned_.emplace_back(static_cast<std::byte*>(mem));
    return static_cast<std::byte*>(mem);
  }

  void release(std::byte* buffer, Bytes size) { free_[size].push_back(buffer); }

 private:
  struct FreeDeleter {
    void operator()(std::byte* ptr) const { std::free(ptr); }
  };
  std::unordered_map<Bytes, std::vector<std::byte*>> free_;
  std::vector<std::unique_ptr<std::byte, FreeDeleter>> owned_;
};

[[noreturn]] void reject(const std::string& what) {
  throw std::runtime_error("backend.kind=real: " + what);
}

void validate(const ExperimentConfig& config) {
  if (config.backend.path.empty()) reject("backend.path is required");
  if (config.shards > 1) reject("sim.shards > 1 is not supported (wall-clock runs are not sharded)");
  if (config.backend.reactors == 0) reject("backend.reactors must be >= 1");
  const auto& stack = config.topology.stack;
  if (stack.fault.enabled()) reject("fault injection models hardware the real backend actually has");
  if (stack.retry.has_value()) reject("the retry layer is not supported");
  if (stack.raid.enabled()) reject("raid aggregation is not supported");
  if (stack.network.has_value()) reject("the simulated network link is not supported");
  if (config.tracer != nullptr && !config.scheduler.has_value()) {
    reject("tracing without a scheduler is not supported");
  }
}

/// One reactor's share of the deployment: a contiguous run of logical
/// devices plus every stream homed on them (global ordinal kept for seeds,
/// request ids and result ordering).
struct GroupPlan {
  std::uint32_t id = 0;
  std::uint32_t dev_begin = 0;
  std::uint32_t dev_count = 0;
  /// Rings are opened multiplex (registered eventfd, no taskrun flags) when
  /// the group drives more than one of them through epoll; a sole ring is
  /// fastest with the reactor blocked inside it.
  bool multiplex = false;
  std::vector<std::pair<std::uint32_t, workload::StreamSpec>> streams;
};

struct StreamOutcome {
  std::uint32_t ordinal = 0;  ///< index into ExperimentConfig::streams
  double mbps = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  stats::LatencyHistogram latency;
};

/// Plain-data result of one reactor group, produced on the group's thread
/// and merged on the caller's.
struct GroupOutcome {
  std::vector<StreamOutcome> streams;
  core::SchedulerStats scheduler_stats;
  core::ServerStats server_stats;
  core::ClassifierStats classifier_stats;
  core::StagingStats staging_stats;
  double host_cpu_utilization = 0.0;
  Bytes peak_buffer_memory = 0;
  std::uint64_t devices_failed = 0;
  std::uint64_t tasks_executed = 0;
  SimTime end_time = 0;  ///< group wall clock when the drain finished
  bool has_server = false;
  UringSummary uring;  ///< per_device_completed indexed group-locally
  exec::ReactorStats reactor;
  obs::TimeSeries timeseries;
  obs::LatencyBreakdown breakdown;
  std::unique_ptr<obs::WindowedLatencyRecorder> slo_windows;
  std::unique_ptr<obs::FlightRecorder> flight;  ///< group-private ring
  std::unique_ptr<obs::Tracer> tracer;          ///< group-private tracer
  std::string error;  ///< non-empty = the group threw; message to rethrow
};

/// Run one reactor group start to finish: open the group's rings, wire the
/// scheduler slice and resident clients, run warm-up + measurement on this
/// thread's RealContext, drain, and report. With backend.reactors > 1 this
/// executes on a pool thread — IORING_SETUP_SINGLE_ISSUER binds each ring
/// to the thread that opened it, so setup, I/O and teardown all stay here.
GroupOutcome run_reactor_group(const ExperimentConfig& config, const GroupPlan& plan,
                               Bytes slice, std::uint32_t total_devices,
                               std::uint32_t total_reactors) {
  GroupOutcome out;
  exec::RealContext ctx;

  std::vector<std::unique_ptr<blockdev::UringBlockDevice>> owned_devices;
  std::vector<blockdev::BlockDevice*> devices;
  for (std::uint32_t i = 0; i < plan.dev_count; ++i) {
    const std::uint32_t global = plan.dev_begin + i;
    blockdev::UringParams params;
    params.path = config.backend.path;
    params.base_offset = static_cast<ByteOffset>(global) * slice;
    params.capacity = slice;
    params.queue_depth = config.backend.queue_depth;
    params.direct = config.backend.direct;
    params.label = "uring" + std::to_string(global);
    params.multiplex = plan.multiplex;
    auto device = blockdev::UringBlockDevice::open(ctx, params);
    if (!device.ok()) reject(device.error().message);
    devices.push_back(device.value().get());
    owned_devices.push_back(std::move(device).value());
  }

  const bool whole_node = plan.dev_count == total_devices;
  std::unique_ptr<core::StorageServer> server;
  if (config.scheduler.has_value()) {
    // Real I/O needs real memory: staging must materialize so read-ahead
    // requests carry destination buffers the kernel can DMA into. Groups
    // smaller than the node get their proportional scheduler share, exactly
    // like a sim shard; the whole-node group keeps the params untouched.
    core::SchedulerParams sched_params =
        whole_node ? *config.scheduler
                   : slice_scheduler_params(*config.scheduler, plan.dev_count,
                                            total_devices);
    sched_params.materialize_buffers = true;
    server = std::make_unique<core::StorageServer>(ctx, devices, sched_params);

    // Pre-warm the extent slab to the steady-state working set and register
    // it with every ring: requests whose buffers land in these extents use
    // fixed (pre-pinned) buffers. Best-effort — registration failure (e.g.
    // locked-memory limits) just means plain READ/WRITE ops.
    core::BufferPool& pool = server->scheduler().pool();
    {
      std::vector<std::unique_ptr<core::IoBuffer>> warm;
      for (std::uint32_t i = 0; i < config.backend.queue_depth; ++i) {
        auto buffer = pool.allocate(0, 0, sched_params.read_ahead, ctx.now());
        if (buffer == nullptr) break;
        warm.push_back(std::move(buffer));
      }
    }
    const auto regions = pool.extent_slab().regions();
    for (auto& device : owned_devices) {
      (void)device->register_buffers(regions);
    }
  }
  out.has_server = server != nullptr;

  // Observation sinks: with one reactor the caller's tracer/flight recorder
  // are used directly (single-threaded, like PR 9); with several, each group
  // records into private instances merged after the join (single-writer).
  obs::Tracer* tracer = config.tracer;
  obs::FlightRecorder* flight = config.flight;
  if (total_reactors > 1) {
    if (config.tracer != nullptr) {
      out.tracer = std::make_unique<obs::Tracer>();
      tracer = out.tracer.get();
    }
    if (config.flight != nullptr) {
      out.flight = std::make_unique<obs::FlightRecorder>(config.flight->capacity());
      out.flight->set_shard(plan.id);
      flight = out.flight.get();
    }
  }
  if (tracer != nullptr && server) server->set_tracer(tracer);
  if (flight != nullptr && server) server->set_flight_recorder(flight);

  const bool attribution =
      config.attribution || config.slo.enabled() || config.flight != nullptr;
  obs::LatencyAttributor attributor;
  out.slo_windows = std::make_unique<obs::WindowedLatencyRecorder>(config.slo.window);
  if (config.slo.enabled()) attributor.attach_window(out.slo_windows.get());

  // After the measurement window closes, new client requests are dropped so
  // in-flight I/O can drain before teardown (closed-loop clients stall on
  // the completion that never comes).
  auto draining = std::make_shared<bool>(false);

  ScratchBuffers scratch;
  workload::RequestSink sink;
  if (server) {
    sink = [srv = server.get(), draining](core::ClientRequest req) {
      if (*draining) return;
      srv->submit(std::move(req));
    };
  } else {
    // Raw path: attach a real buffer to each request (a data-less request
    // would transfer nothing) and recycle it on completion.
    sink = [&devices, &scratch, draining](core::ClientRequest req) {
      if (*draining) return;
      blockdev::BlockRequest io;
      io.offset = req.offset;
      io.length = req.length;
      io.op = req.op;
      io.id = req.id;
      io.data = req.data != nullptr ? req.data : scratch.acquire(req.length);
      const bool borrowed = req.data == nullptr;
      io.on_complete = [&scratch, data = io.data, length = req.length, borrowed,
                        prev = std::move(req.on_complete)](SimTime done, IoStatus status) {
        if (borrowed) scratch.release(data, length);
        if (prev) prev(done, status);
      };
      devices.at(req.device)->submit(std::move(io));
    };
  }

  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(plan.streams.size());
  for (const auto& [ordinal, planned_spec] : plan.streams) {
    workload::StreamSpec spec = planned_spec;
    spec.device -= plan.dev_begin;  // group-local device index
    // Stream placements were drawn against the simulated disk's capacity;
    // fold them into the (usually much smaller) real slice, preserving the
    // uniform request-aligned spread.
    const Bytes cap = devices.at(spec.device)->capacity();
    const Bytes slots = cap / spec.request_size;
    if (slots == 0) {
      reject("device slice smaller than one request (" +
             std::to_string(spec.request_size) + " bytes)");
    }
    spec.start_offset = spec.start_offset / spec.request_size % slots * spec.request_size;
    if (spec.region_bytes != 0 && spec.start_offset + spec.region_bytes > cap) {
      spec.region_bytes = cap - spec.start_offset;
    }
    workload::RequestSink client_sink = sink;
    if (attribution) {
      // Request ids key on the global stream ordinal, so rids are invariant
      // across reactor counts (exactly like the sharded runner).
      client_sink = [&attributor, &ctx, flight, base = sink, ordinal = ordinal,
                     seq = std::uint64_t{0}](core::ClientRequest req) mutable {
        obs::RequestTrace* trace =
            attributor.acquire(obs::make_request_id(ordinal, ++seq), ctx.now());
        req.trace = trace;
        if (flight != nullptr) {
          flight->record(obs::FlightCode::kIssue, ctx.now(), trace->rid, req.device,
                         req.offset);
        }
        req.on_complete = [&attributor, &ctx, flight, trace,
                           prev = std::move(req.on_complete)](SimTime done,
                                                              IoStatus status) {
          const bool ok = io_ok(status);
          if (flight != nullptr) {
            flight->record(obs::FlightCode::kComplete, ctx.now(), trace->rid,
                           done >= trace->issue ? done - trace->issue : 0, ok ? 1 : 0);
          }
          attributor.complete(trace, done, ok);
          if (prev) prev(done, status);
        };
        base(std::move(req));
      };
    }
    clients.push_back(std::make_unique<workload::StreamClient>(
        ctx, std::move(client_sink), spec, devices.at(spec.device)->capacity()));
  }
  for (auto& client : clients) client->start();

  // Gauges keep the single-reactor names when the group is the whole node
  // (metrics-surface parity with PR 9); reactor groups prefix theirs like
  // sim shards, and the merge step sums the per-group mbps columns back
  // into the global "mbps".
  const std::string prefix =
      total_reactors > 1 ? "reactor" + std::to_string(plan.id) + "." : "";
  obs::TimeSeriesSampler sampler(ctx, config.sample_interval);
  if (config.sample_interval > 0) {
    sampler.add_gauge(prefix + "mbps", [&clients, prev_bytes = Bytes{0},
                                        prev_time = SimTime{0}, &ctx]() mutable {
      Bytes total = 0;
      for (const auto& client : clients) total += client->stats().throughput.total_bytes();
      const SimTime now = ctx.now();
      const Bytes delta = total >= prev_bytes ? total - prev_bytes : total;
      const double mbps = now > prev_time ? mb_per_sec(delta, now - prev_time) : 0.0;
      prev_bytes = total;
      prev_time = now;
      return mbps;
    });
    if (server) {
      core::StreamScheduler& sched = server->scheduler();
      sampler.add_gauge(prefix + "dispatch_set",
                        [&sched]() { return static_cast<double>(sched.dispatched_count()); });
      sampler.add_gauge(prefix + "pool_mb", [&sched]() {
        return static_cast<double>(sched.pool().committed()) / 1e6;
      });
    }
    sampler.start();
  }

  ctx.run_until(config.warmup);
  for (auto& client : clients) client->begin_measurement();
  attributor.begin_measurement();
  const SimTime t0 = ctx.now();
  const SimTime t1 = t0 + config.measure;
  ctx.run_until(t1);

  // Stop admitting work, then give in-flight I/O (and the scheduler's tail
  // of read-ahead) a bounded window to drain.
  *draining = true;
  const SimTime drain_deadline = ctx.now() + sec(5);
  auto in_flight = [&owned_devices]() {
    std::size_t total = 0;
    for (const auto& device : owned_devices) total += device->in_flight();
    return total;
  };
  while (in_flight() > 0 && ctx.now() < drain_deadline) {
    ctx.run_until(ctx.now() + msec(5));
  }
  // Past the graceful window the drain becomes unconditional: completion
  // callbacks capture the clients, scratch buffers and attributor declared
  // below owned_devices, so letting ~UringBlockDevice deliver them after
  // those locals are destroyed would be a use-after-free. The device
  // destructor drains unboundedly anyway — doing it here only moves the
  // wait to a point where every callback target is still alive.
  while (in_flight() > 0) {
    ctx.run_until(ctx.now() + msec(5));
  }

  out.streams.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto& cs = clients[i]->stats();
    StreamOutcome stream;
    stream.ordinal = plan.streams[i].first;
    stream.mbps = cs.throughput.mbps(t0, t1);
    stream.completed = cs.completed;
    stream.errors = cs.errors;
    stream.latency = cs.latency;
    out.streams.push_back(std::move(stream));
  }
  out.tasks_executed = ctx.executed_tasks();
  out.end_time = ctx.now();
  if (server) {
    out.scheduler_stats = server->scheduler().stats();
    out.server_stats = server->stats();
    out.classifier_stats = server->classifier().stats();
    out.staging_stats = server->scheduler().staging_stats();
    out.host_cpu_utilization = server->scheduler().cpu().stats().utilization(t1);
    out.peak_buffer_memory = server->scheduler().pool().stats().peak_committed;
    out.devices_failed = server->scheduler().failed_device_count();
  }
  if (config.sample_interval > 0) {
    sampler.stop();
    out.timeseries = sampler.take();
  }
  if (attribution) {
    out.breakdown = attributor.breakdown();
    out.breakdown.enabled = true;
  }

  out.uring.devices = plan.dev_count;
  out.uring.per_device_completed.resize(plan.dev_count, 0);
  for (std::uint32_t i = 0; i < plan.dev_count; ++i) {
    const blockdev::UringStats& ds = owned_devices[i]->stats();
    if (owned_devices[i]->using_direct()) ++out.uring.direct_devices;
    out.uring.submitted += ds.submitted;
    out.uring.completed += ds.completed;
    out.uring.errors += ds.errors;
    out.uring.short_resubmits += ds.short_resubmits;
    out.uring.transient_retries += ds.transient_retries;
    out.uring.fixed_buffer_ops += ds.fixed_buffer_ops;
    out.uring.direct_ops += ds.direct_ops;
    out.uring.backlog_peak = std::max(out.uring.backlog_peak, ds.backlog_peak);
    out.uring.enter_syscalls += ds.enter_syscalls;
    out.uring.flush_batches += ds.flush_batches;
    out.uring.sqes_flushed += ds.sqes_flushed;
    out.uring.batch_size_max = std::max(out.uring.batch_size_max, ds.batch_size_max);
    for (std::size_t b = 0; b < blockdev::kUringBatchBuckets; ++b) {
      out.uring.batch_size_log2[b] += ds.batch_size_log2[b];
    }
    out.uring.per_device_completed[i] = ds.completed;
  }
  out.reactor = ctx.reactor_stats();
  return out;
}

}  // namespace

ExperimentResult run_experiment_real(const ExperimentConfig& config) {
  validate(config);

  // Carve the backing file into one equal, 4096-aligned slice per logical
  // device — the real counterpart of "N disks".
  const std::uint32_t device_count = config.topology.logical_device_count();
  struct stat st{};
  if (::stat(config.backend.path.c_str(), &st) != 0) {
    reject("cannot stat " + config.backend.path + ": " + std::string(strerror(errno)));
  }
  const auto file_size = static_cast<Bytes>(st.st_size);
  const Bytes slice = file_size / device_count / 4096 * 4096;
  if (slice == 0) {
    reject(config.backend.path + " is too small for " + std::to_string(device_count) +
           " device slices");
  }

  // Reactor plan: near-even contiguous device ranges, like sharded
  // controller slices. The request is clamped to the device count (a
  // reactor without a device would just spin its timer heap).
  const std::uint32_t reactors = std::min(config.backend.reactors, device_count);
  std::vector<GroupPlan> plans(reactors);
  for (std::uint32_t k = 0; k < reactors; ++k) {
    plans[k].id = k;
    plans[k].dev_begin = k * device_count / reactors;
    plans[k].dev_count = (k + 1) * device_count / reactors - plans[k].dev_begin;
    plans[k].multiplex = plans[k].dev_count > 1;
  }

  // Home every stream on the reactor owning its device, keeping the global
  // ordinal: seeds stay on the shard-0 chain with the global ordinal and
  // rids key on it too, so results are invariant across reactor counts.
  for (std::uint32_t i = 0; i < config.streams.size(); ++i) {
    workload::StreamSpec spec = config.streams[i];
    if (spec.device >= device_count) reject("stream device index out of range");
    if (spec.seed == 0) {
      spec.seed = stream_seed(shard_workload_seed(config.workload_seed, 0), i);
    }
    const std::uint32_t k =
        static_cast<std::uint32_t>(spec.device) * reactors / device_count;
    GroupPlan& plan = plans[std::min(k, reactors - 1)];
    // Integer division can land a boundary device one group early/late;
    // walk to the owner.
    std::uint32_t owner = plan.id;
    while (spec.device < plans[owner].dev_begin) --owner;
    while (spec.device >= plans[owner].dev_begin + plans[owner].dev_count) ++owner;
    plans[owner].streams.emplace_back(i, std::move(spec));
  }

  std::vector<GroupOutcome> outcomes(reactors);
  if (reactors == 1) {
    outcomes[0] = run_reactor_group(config, plans[0], slice, device_count, 1);
  } else {
    // One pool thread per group; the group function must run start to
    // finish on its thread (SINGLE_ISSUER rings). ThreadPool tasks must not
    // throw, so failures are carried out as messages and rethrown here.
    ThreadPool pool(reactors);
    for (std::uint32_t k = 0; k < reactors; ++k) {
      pool.submit([&config, &plans, &outcomes, k, slice, device_count, reactors]() {
        try {
          outcomes[k] =
              run_reactor_group(config, plans[k], slice, device_count, reactors);
        } catch (const std::exception& e) {
          outcomes[k].error = e.what();
        }
      });
    }
    pool.wait_idle();
  }
  for (const GroupOutcome& outcome : outcomes) {
    if (!outcome.error.empty()) throw std::runtime_error(outcome.error);
  }

  ExperimentResult result;
  result.stream_mbps.assign(config.streams.size(), 0.0);
  double min_mbps = 1e18;
  double max_mbps = 0.0;
  std::size_t stream_count = 0;
  for (const GroupOutcome& outcome : outcomes) {
    for (const StreamOutcome& stream : outcome.streams) {
      result.stream_mbps[stream.ordinal] = stream.mbps;
      result.total_mbps += stream.mbps;
      min_mbps = std::min(min_mbps, stream.mbps);
      max_mbps = std::max(max_mbps, stream.mbps);
      result.requests_completed += stream.completed;
      result.client_errors += stream.errors;
      result.latency.merge(stream.latency);
      ++stream_count;
    }
  }
  result.min_stream_mbps = stream_count == 0 ? 0.0 : min_mbps;
  result.max_stream_mbps = max_mbps;

  result.uring_summary.enabled = true;
  result.uring_summary.per_device_completed.assign(device_count, 0);
  result.reactor_summary.enabled = true;
  result.reactor_summary.reactors = reactors;
  result.reactor_summary.requested = config.backend.reactors;
  for (std::uint32_t k = 0; k < reactors; ++k) {
    const GroupOutcome& outcome = outcomes[k];
    result.sim_events_dispatched += outcome.tasks_executed;
    if (outcome.has_server) {
      add_scheduler_stats(result.scheduler_stats, outcome.scheduler_stats);
      add_server_stats(result.server_stats, outcome.server_stats);
      add_classifier_stats(result.classifier_stats, outcome.classifier_stats);
      add_staging_stats(result.staging_stats, outcome.staging_stats);
      // Reactors are parallel host threads: the binding figure is the
      // busiest one's CPU, not a sum that could read past 100%.
      result.host_cpu_utilization =
          std::max(result.host_cpu_utilization, outcome.host_cpu_utilization);
      result.peak_buffer_memory += outcome.peak_buffer_memory;
      result.devices_failed += outcome.devices_failed;
    }

    UringSummary& u = result.uring_summary;
    const UringSummary& g = outcome.uring;
    u.devices += g.devices;
    u.direct_devices += g.direct_devices;
    u.submitted += g.submitted;
    u.completed += g.completed;
    u.errors += g.errors;
    u.short_resubmits += g.short_resubmits;
    u.transient_retries += g.transient_retries;
    u.fixed_buffer_ops += g.fixed_buffer_ops;
    u.direct_ops += g.direct_ops;
    u.backlog_peak = std::max(u.backlog_peak, g.backlog_peak);
    u.enter_syscalls += g.enter_syscalls;
    u.flush_batches += g.flush_batches;
    u.sqes_flushed += g.sqes_flushed;
    u.batch_size_max = std::max(u.batch_size_max, g.batch_size_max);
    for (std::size_t b = 0; b < u.batch_size_log2.size(); ++b) {
      u.batch_size_log2[b] += g.batch_size_log2[b];
    }
    for (std::uint32_t d = 0; d < outcome.uring.devices; ++d) {
      u.per_device_completed[plans[k].dev_begin + d] = g.per_device_completed[d];
    }

    ReactorSummary& r = result.reactor_summary;
    r.wakeups += outcome.reactor.wakeups;
    r.completion_wakeups += outcome.reactor.completion_wakeups;
    r.timer_wakeups += outcome.reactor.timer_wakeups;
    r.spurious_wakeups += outcome.reactor.spurious_wakeups;
    r.epoll_waits += outcome.reactor.epoll_waits;
    r.inring_waits += outcome.reactor.inring_waits;
    r.idle_sleeps += outcome.reactor.idle_sleeps;
    r.completions += outcome.reactor.completions;
  }

  if (config.tracer != nullptr && reactors > 1) {
    for (std::uint32_t k = 0; k < reactors; ++k) {
      if (outcomes[k].tracer == nullptr) continue;
      const std::uint32_t dev_begin = plans[k].dev_begin;
      const std::uint32_t group = k;
      // Shift each category of the group-local track-id layout back into
      // global coordinates — same scheme as the sharded merge, minus the
      // controller window (the real path has no controllers).
      config.tracer->merge_from(*outcomes[k].tracer, [dev_begin, group](std::uint32_t tid) {
        if (tid >= 0x30000) {
          return 0x30000 + (((tid - 0x30000) + group * 0x4000) & 0xFFFFU);
        }
        if (tid >= 0x20000) return tid + dev_begin;
        if (tid >= 0x10000) return tid;
        if (tid >= 0x100) return tid + dev_begin;
        if (tid == obs::kSchedulerTrack) return obs::kSchedulerTrack + group;
        return tid;
      });
    }
  }

  if (config.sample_interval > 0) {
    // Wall clocks tick independently, so group series can differ by a
    // sample; concatenate column-wise on the shortest timeline.
    std::size_t rows = outcomes[0].timeseries.times.size();
    for (const GroupOutcome& outcome : outcomes) {
      rows = std::min(rows, outcome.timeseries.times.size());
    }
    result.timeseries = std::move(outcomes[0].timeseries);
    result.timeseries.times.resize(rows);
    result.timeseries.rows.resize(rows);
    for (std::uint32_t k = 1; k < reactors; ++k) {
      obs::TimeSeries series = std::move(outcomes[k].timeseries);
      for (auto& name : series.names) {
        result.timeseries.names.push_back(std::move(name));
      }
      for (std::size_t row = 0; row < rows; ++row) {
        auto& dst = result.timeseries.rows[row];
        dst.insert(dst.end(), series.rows[row].begin(), series.rows[row].end());
      }
    }
    if (reactors > 1) {
      // Node-wide MB/s is the row-wise sum of the per-reactor gauges —
      // same name and meaning as the single-reactor column.
      std::vector<std::size_t> mbps_cols;
      for (std::size_t col = 0; col < result.timeseries.names.size(); ++col) {
        const std::string& name = result.timeseries.names[col];
        if (name.size() > 5 && name.compare(name.size() - 5, 5, ".mbps") == 0) {
          mbps_cols.push_back(col);
        }
      }
      if (!mbps_cols.empty()) {
        result.timeseries.names.push_back("mbps");
        for (auto& row : result.timeseries.rows) {
          double total = 0.0;
          for (const std::size_t col : mbps_cols) total += row[col];
          row.push_back(total);
        }
      }
    }
  }

  const bool attribution =
      config.attribution || config.slo.enabled() || config.flight != nullptr;
  obs::WindowedLatencyRecorder slo_windows(config.slo.window);
  if (attribution) {
    result.breakdown.enabled = true;
    for (GroupOutcome& outcome : outcomes) {
      result.breakdown.merge_from(outcome.breakdown);
      if (outcome.slo_windows) slo_windows.merge_from(*outcome.slo_windows);
    }
  }
  result.slo_report = obs::SloEngine::evaluate(config.slo, slo_windows, result.latency);
  if (config.flight != nullptr) {
    if (reactors > 1) {
      // Stitch the group-private rings into the caller's recorder, like the
      // sharded merge (ordered by timestamp, newest capacity() kept).
      for (GroupOutcome& outcome : outcomes) {
        if (outcome.flight) config.flight->merge_from(*outcome.flight);
      }
    }
    if (result.slo_report.enabled && !result.slo_report.pass) {
      SimTime end = 0;
      for (const GroupOutcome& outcome : outcomes) {
        end = std::max(end, outcome.end_time);
      }
      config.flight->record(obs::FlightCode::kSloBreach, end, 0,
                            result.slo_report.windows_breached,
                            result.slo_report.windows_evaluated);
    }
  }
  return result;
}

#endif  // SST_WITH_URING

}  // namespace sst::experiment
