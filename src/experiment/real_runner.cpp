// Real-I/O experiment runner: the simulation harness's wiring — scheduler,
// server, closed-loop stream clients, attribution, SLO windows — executed
// against real files through io_uring block devices on a wall-clock
// execution context. Built to answer one question: does the stream
// scheduler's benefit survive contact with a real I/O path? (See
// bench/calibration.cpp for the sim-vs-real comparison harness.)
//
// Scope: the flat device view only. Fault injection, raid, the simulated
// network link and the sharded engine all model hardware — the real backend
// has real hardware, so configurations enabling them are rejected rather
// than half-simulated.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/sharding.hpp"

#if defined(SST_WITH_URING)
#include <sys/stat.h>

#include "blockdev/uring_block_device.hpp"
#include "exec/real_context.hpp"
#endif

namespace sst::experiment {

bool real_backend_available() {
#if defined(SST_WITH_URING)
  return true;
#else
  return false;
#endif
}

#if !defined(SST_WITH_URING)

ExperimentResult run_experiment_real(const ExperimentConfig& config) {
  (void)config;
  throw std::runtime_error(
      "backend.kind=real requires a build with -DSST_WITH_URING=ON");
}

#else

namespace {

/// Recycling allocator for the raw-client data path (no scheduler staging
/// in front of the device): buffers are 4096-aligned so O_DIRECT stays
/// usable, and recycled per size so the closed-loop steady state stops
/// allocating after the first lap.
class ScratchBuffers {
 public:
  std::byte* acquire(Bytes size) {
    auto& free_list = free_[size];
    if (!free_list.empty()) {
      std::byte* buffer = free_list.back();
      free_list.pop_back();
      return buffer;
    }
    void* mem = std::aligned_alloc(4096, size);
    if (mem == nullptr) throw std::bad_alloc();
    owned_.emplace_back(static_cast<std::byte*>(mem));
    return static_cast<std::byte*>(mem);
  }

  void release(std::byte* buffer, Bytes size) { free_[size].push_back(buffer); }

 private:
  struct FreeDeleter {
    void operator()(std::byte* ptr) const { std::free(ptr); }
  };
  std::unordered_map<Bytes, std::vector<std::byte*>> free_;
  std::vector<std::unique_ptr<std::byte, FreeDeleter>> owned_;
};

[[noreturn]] void reject(const std::string& what) {
  throw std::runtime_error("backend.kind=real: " + what);
}

void validate(const ExperimentConfig& config) {
  if (config.backend.path.empty()) reject("backend.path is required");
  if (config.shards > 1) reject("sim.shards > 1 is not supported (wall-clock runs are not sharded)");
  const auto& stack = config.topology.stack;
  if (stack.fault.enabled()) reject("fault injection models hardware the real backend actually has");
  if (stack.retry.has_value()) reject("the retry layer is not supported");
  if (stack.raid.enabled()) reject("raid aggregation is not supported");
  if (stack.network.has_value()) reject("the simulated network link is not supported");
  if (config.tracer != nullptr && !config.scheduler.has_value()) {
    reject("tracing without a scheduler is not supported");
  }
}

}  // namespace

ExperimentResult run_experiment_real(const ExperimentConfig& config) {
  validate(config);

  exec::RealContext ctx;

  // Carve the backing file into one equal, 4096-aligned slice per logical
  // device — the real counterpart of "N disks".
  const std::uint32_t device_count = config.topology.logical_device_count();
  struct stat st{};
  if (::stat(config.backend.path.c_str(), &st) != 0) {
    reject("cannot stat " + config.backend.path + ": " + std::string(strerror(errno)));
  }
  const auto file_size = static_cast<Bytes>(st.st_size);
  const Bytes slice = file_size / device_count / 4096 * 4096;
  if (slice == 0) {
    reject(config.backend.path + " is too small for " + std::to_string(device_count) +
           " device slices");
  }

  std::vector<std::unique_ptr<blockdev::UringBlockDevice>> owned_devices;
  std::vector<blockdev::BlockDevice*> devices;
  for (std::uint32_t i = 0; i < device_count; ++i) {
    blockdev::UringParams params;
    params.path = config.backend.path;
    params.base_offset = static_cast<ByteOffset>(i) * slice;
    params.capacity = slice;
    params.queue_depth = config.backend.queue_depth;
    params.direct = config.backend.direct;
    params.label = "uring" + std::to_string(i);
    auto device = blockdev::UringBlockDevice::open(ctx, params);
    if (!device.ok()) reject(device.error().message);
    devices.push_back(device.value().get());
    owned_devices.push_back(std::move(device).value());
  }

  std::unique_ptr<core::StorageServer> server;
  if (config.scheduler.has_value()) {
    // Real I/O needs real memory: staging must materialize so read-ahead
    // requests carry destination buffers the kernel can DMA into.
    core::SchedulerParams sched_params = *config.scheduler;
    sched_params.materialize_buffers = true;
    server = std::make_unique<core::StorageServer>(ctx, devices, sched_params);

    // Pre-warm the extent slab to the steady-state working set and register
    // it with every ring: requests whose buffers land in these extents use
    // fixed (pre-pinned) buffers. Best-effort — registration failure (e.g.
    // locked-memory limits) just means plain READ/WRITE ops.
    core::BufferPool& pool = server->scheduler().pool();
    {
      std::vector<std::unique_ptr<core::IoBuffer>> warm;
      for (std::uint32_t i = 0; i < config.backend.queue_depth; ++i) {
        auto buffer = pool.allocate(0, 0, sched_params.read_ahead, ctx.now());
        if (buffer == nullptr) break;
        warm.push_back(std::move(buffer));
      }
    }
    const auto regions = pool.extent_slab().regions();
    for (auto& device : owned_devices) {
      (void)device->register_buffers(regions);
    }
  }
  if (config.tracer != nullptr && server) server->set_tracer(config.tracer);
  if (config.flight != nullptr && server) server->set_flight_recorder(config.flight);

  const bool attribution =
      config.attribution || config.slo.enabled() || config.flight != nullptr;
  obs::LatencyAttributor attributor;
  obs::WindowedLatencyRecorder slo_windows(config.slo.window);
  if (config.slo.enabled()) attributor.attach_window(&slo_windows);

  // After the measurement window closes, new client requests are dropped so
  // in-flight I/O can drain before teardown (closed-loop clients stall on
  // the completion that never comes).
  auto draining = std::make_shared<bool>(false);

  ScratchBuffers scratch;
  workload::RequestSink sink;
  if (server) {
    sink = [srv = server.get(), draining](core::ClientRequest req) {
      if (*draining) return;
      srv->submit(std::move(req));
    };
  } else {
    // Raw path: attach a real buffer to each request (a data-less request
    // would transfer nothing) and recycle it on completion.
    sink = [&devices, &scratch, draining](core::ClientRequest req) {
      if (*draining) return;
      blockdev::BlockRequest io;
      io.offset = req.offset;
      io.length = req.length;
      io.op = req.op;
      io.id = req.id;
      io.data = req.data != nullptr ? req.data : scratch.acquire(req.length);
      const bool borrowed = req.data == nullptr;
      io.on_complete = [&scratch, data = io.data, length = req.length, borrowed,
                        prev = std::move(req.on_complete)](SimTime done, IoStatus status) {
        if (borrowed) scratch.release(data, length);
        if (prev) prev(done, status);
      };
      devices.at(req.device)->submit(std::move(io));
    };
  }

  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(config.streams.size());
  for (std::uint32_t i = 0; i < config.streams.size(); ++i) {
    workload::StreamSpec spec = config.streams[i];
    if (spec.device >= devices.size()) reject("stream device index out of range");
    // Stream placements were drawn against the simulated disk's capacity;
    // fold them into the (usually much smaller) real slice, preserving the
    // uniform request-aligned spread.
    const Bytes cap = devices.at(spec.device)->capacity();
    const Bytes slots = cap / spec.request_size;
    if (slots == 0) {
      reject("device slice smaller than one request (" +
             std::to_string(spec.request_size) + " bytes)");
    }
    spec.start_offset = spec.start_offset / spec.request_size % slots * spec.request_size;
    if (spec.region_bytes != 0 && spec.start_offset + spec.region_bytes > cap) {
      spec.region_bytes = cap - spec.start_offset;
    }
    if (spec.seed == 0) {
      spec.seed = stream_seed(shard_workload_seed(config.workload_seed, 0), i);
    }
    workload::RequestSink client_sink = sink;
    if (attribution) {
      client_sink = [&attributor, &ctx, flight = config.flight, base = sink,
                     ordinal = i, seq = std::uint64_t{0}](core::ClientRequest req) mutable {
        obs::RequestTrace* trace =
            attributor.acquire(obs::make_request_id(ordinal, ++seq), ctx.now());
        req.trace = trace;
        if (flight != nullptr) {
          flight->record(obs::FlightCode::kIssue, ctx.now(), trace->rid, req.device,
                         req.offset);
        }
        req.on_complete = [&attributor, &ctx, flight, trace,
                           prev = std::move(req.on_complete)](SimTime done,
                                                              IoStatus status) {
          const bool ok = io_ok(status);
          if (flight != nullptr) {
            flight->record(obs::FlightCode::kComplete, ctx.now(), trace->rid,
                           done >= trace->issue ? done - trace->issue : 0, ok ? 1 : 0);
          }
          attributor.complete(trace, done, ok);
          if (prev) prev(done, status);
        };
        base(std::move(req));
      };
    }
    clients.push_back(std::make_unique<workload::StreamClient>(
        ctx, std::move(client_sink), spec, devices.at(spec.device)->capacity()));
  }
  for (auto& client : clients) client->start();

  obs::TimeSeriesSampler sampler(ctx, config.sample_interval);
  if (config.sample_interval > 0) {
    sampler.add_gauge("mbps", [&clients, prev_bytes = Bytes{0}, prev_time = SimTime{0},
                               &ctx]() mutable {
      Bytes total = 0;
      for (const auto& client : clients) total += client->stats().throughput.total_bytes();
      const SimTime now = ctx.now();
      const Bytes delta = total >= prev_bytes ? total - prev_bytes : total;
      const double mbps = now > prev_time ? mb_per_sec(delta, now - prev_time) : 0.0;
      prev_bytes = total;
      prev_time = now;
      return mbps;
    });
    if (server) {
      core::StreamScheduler& sched = server->scheduler();
      sampler.add_gauge("dispatch_set",
                        [&sched]() { return static_cast<double>(sched.dispatched_count()); });
      sampler.add_gauge("pool_mb", [&sched]() {
        return static_cast<double>(sched.pool().committed()) / 1e6;
      });
    }
    sampler.start();
  }

  ctx.run_until(config.warmup);
  for (auto& client : clients) client->begin_measurement();
  attributor.begin_measurement();
  const SimTime t0 = ctx.now();
  const SimTime t1 = t0 + config.measure;
  ctx.run_until(t1);

  // Stop admitting work, then give in-flight I/O (and the scheduler's tail
  // of read-ahead) a bounded window to drain.
  *draining = true;
  const SimTime drain_deadline = ctx.now() + sec(5);
  auto in_flight = [&owned_devices]() {
    std::size_t total = 0;
    for (const auto& device : owned_devices) total += device->in_flight();
    return total;
  };
  while (in_flight() > 0 && ctx.now() < drain_deadline) {
    ctx.run_until(ctx.now() + msec(5));
  }
  // Past the graceful window the drain becomes unconditional: completion
  // callbacks capture the clients, scratch buffers and attributor declared
  // below owned_devices, so letting ~UringBlockDevice deliver them after
  // those locals are destroyed would be a use-after-free. The device
  // destructor drains unboundedly anyway — doing it here only moves the
  // wait to a point where every callback target is still alive.
  while (in_flight() > 0) {
    ctx.run_until(ctx.now() + msec(5));
  }

  ExperimentResult result;
  double min_mbps = 1e18;
  double max_mbps = 0.0;
  result.stream_mbps.reserve(clients.size());
  for (const auto& client : clients) {
    const auto& cs = client->stats();
    const double mbps = cs.throughput.mbps(t0, t1);
    result.stream_mbps.push_back(mbps);
    result.total_mbps += mbps;
    min_mbps = std::min(min_mbps, mbps);
    max_mbps = std::max(max_mbps, mbps);
    result.requests_completed += cs.completed;
    result.client_errors += cs.errors;
    result.latency.merge(cs.latency);
  }
  result.min_stream_mbps = clients.empty() ? 0.0 : min_mbps;
  result.max_stream_mbps = max_mbps;
  result.sim_events_dispatched = ctx.executed_tasks();
  if (server) {
    result.scheduler_stats = server->scheduler().stats();
    result.server_stats = server->stats();
    result.classifier_stats = server->classifier().stats();
    result.staging_stats = server->scheduler().staging_stats();
    result.host_cpu_utilization = server->scheduler().cpu().stats().utilization(t1);
    result.peak_buffer_memory = server->scheduler().pool().stats().peak_committed;
    result.devices_failed = server->scheduler().failed_device_count();
  }
  if (config.sample_interval > 0) {
    sampler.stop();
    result.timeseries = sampler.take();
  }
  if (attribution) {
    result.breakdown = attributor.breakdown();
    result.breakdown.enabled = true;
  }
  result.slo_report = obs::SloEngine::evaluate(config.slo, slo_windows, result.latency);
  if (config.flight != nullptr && result.slo_report.enabled && !result.slo_report.pass) {
    config.flight->record(obs::FlightCode::kSloBreach, ctx.now(), 0,
                          result.slo_report.windows_breached,
                          result.slo_report.windows_evaluated);
  }
  return result;
}

#endif  // SST_WITH_URING

}  // namespace sst::experiment
