#include "experiment/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/thread_pool.hpp"

namespace sst::experiment {

unsigned default_sweep_workers() {
  if (const char* env = std::getenv("SST_BENCH_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1024) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<ExperimentResult> run_sweep_jobs(
    const std::vector<std::function<ExperimentResult()>>& jobs, unsigned workers) {
  if (workers == 0) workers = default_sweep_workers();
  std::vector<ExperimentResult> results(jobs.size());
  if (jobs.empty()) return results;

  if (workers == 1 || jobs.size() == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
    return results;
  }

  // Dynamic claiming: grid points vary widely in cost (stream count scales
  // event volume), so a shared index balances better than static slicing.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(workers, jobs.size())));
    for (unsigned w = 0; w < pool.worker_count(); ++w) {
      pool.submit([&]() {
        for (std::size_t i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
          try {
            results[i] = jobs[i]();
          } catch (...) {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            next.store(jobs.size());  // stop claiming further points
            return;
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                        unsigned workers) {
  std::vector<std::function<ExperimentResult()>> jobs;
  jobs.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    jobs.emplace_back([&config]() { return run_experiment(config); });
  }
  return run_sweep_jobs(jobs, workers);
}

}  // namespace sst::experiment
