#include "experiment/runner.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>

#include "experiment/sharding.hpp"
#include "sim/simulator.hpp"

namespace sst::experiment {

namespace {

/// Shared state for the rolling-percentile gauges: the first gauge of a
/// tick recomputes the since-last-tick delta histogram, the later ones read
/// it (the sampler evaluates gauges in registration order).
struct RollingLatency {
  stats::LatencyHistogram prev;
  stats::LatencyHistogram delta;
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (config.backend.kind == BackendConfig::Kind::kReal) {
    return run_experiment_real(config);
  }
  if (config.shards > 1) {
    const ShardPlan plan = plan_shards(config.topology, config.shards, config.lookahead);
    // The plan can collapse to one shard (single controller, striping);
    // then the plain engine below is both correct and faster.
    if (plan.shard_count() > 1) return run_experiment_sharded(config, plan);
  }
  sim::Simulator simulator;
  // The whole deployment — node plus the declarative device stack (sim
  // disk -> fault -> retry -> raid -> network) — comes from the topology
  // spec. Layers are only constructed when enabled: fault-free, raid-free
  // runs keep the bare devices, identical to the unstacked hot path.
  node::Topology topology(simulator, config.topology);
  node::StorageNode& node = topology.node();
  io::DeviceStack& stack = topology.stack();
  const std::vector<blockdev::BlockDevice*>& devices = stack.devices();

  std::unique_ptr<core::StorageServer> server;
  if (config.scheduler.has_value()) {
    server = std::make_unique<core::StorageServer>(simulator, devices, *config.scheduler);
  }

  if (config.tracer != nullptr) {
    node.attach_tracer(config.tracer);
    if (server) server->set_tracer(config.tracer);
    stack.attach_tracer(config.tracer);
  }
  if (config.flight != nullptr && server) {
    server->set_flight_recorder(config.flight);
  }

  // Attribution is implied by an SLO (the windowed recorder needs per
  // request latencies) and by a flight recorder (lifecycle events carry the
  // stable request id).
  const bool attribution =
      config.attribution || config.slo.enabled() || config.flight != nullptr;
  obs::LatencyAttributor attributor;
  obs::WindowedLatencyRecorder slo_windows(config.slo.window);
  if (config.slo.enabled()) attributor.attach_window(&slo_windows);

  workload::RequestSink sink;
  if (server) {
    sink = [srv = server.get()](core::ClientRequest req) { srv->submit(std::move(req)); };
  } else {
    sink = [&devices](core::ClientRequest req) {
      blockdev::BlockRequest io;
      io.offset = req.offset;
      io.length = req.length;
      io.op = req.op;
      io.id = req.id;
      io.data = req.data;
      io.on_complete = std::move(req.on_complete);
      devices.at(req.device)->submit(std::move(io));
    };
  }
  sink = stack.wrap_sink(std::move(sink));

  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(config.streams.size());
  for (std::uint32_t i = 0; i < config.streams.size(); ++i) {
    workload::StreamSpec spec = config.streams[i];
    assert(spec.device < devices.size());
    if (spec.seed == 0) {
      // The single-threaded engine is the one-shard case of the derivation
      // chain: shard 0's sequence, ordinal = position in spec order.
      spec.seed = stream_seed(shard_workload_seed(config.workload_seed, 0), i);
    }
    workload::RequestSink client_sink = sink;
    if (attribution) {
      // Outermost wrapper (clients call it directly): the issue stamp is
      // taken before any network transit, and the completion fold — applied
      // first, so it fires last — sees the client-side completion time.
      client_sink = [&attributor, &simulator, flight = config.flight, base = sink,
                     ordinal = i, seq = std::uint64_t{0}](
                        core::ClientRequest req) mutable {
        obs::RequestTrace* trace =
            attributor.acquire(obs::make_request_id(ordinal, ++seq), simulator.now());
        req.trace = trace;
        if (flight != nullptr) {
          flight->record(obs::FlightCode::kIssue, simulator.now(), trace->rid,
                         req.device, req.offset);
        }
        req.on_complete = [&attributor, &simulator, flight, trace,
                           prev = std::move(req.on_complete)](SimTime done,
                                                              IoStatus status) {
          const bool ok = io_ok(status);
          if (flight != nullptr) {
            flight->record(obs::FlightCode::kComplete, simulator.now(), trace->rid,
                           done >= trace->issue ? done - trace->issue : 0,
                           ok ? 1 : 0);
          }
          attributor.complete(trace, done, ok);
          if (prev) prev(done, status);
        };
        base(std::move(req));
      };
    }
    clients.push_back(std::make_unique<workload::StreamClient>(
        simulator, std::move(client_sink), spec, topology.device_capacity(spec.device)));
  }
  for (auto& client : clients) client->start();

  obs::TimeSeriesSampler sampler(simulator, config.sample_interval);
  if (config.sample_interval > 0) {
    // Windowed throughput: bytes moved since the previous tick. The meters
    // reset at begin_measurement, so a shrinking total restarts the window.
    sampler.add_gauge("mbps", [&clients, prev_bytes = Bytes{0},
                               prev_time = SimTime{0}, &simulator]() mutable {
      Bytes total = 0;
      for (const auto& client : clients) total += client->stats().throughput.total_bytes();
      const SimTime now = simulator.now();
      const Bytes delta = total >= prev_bytes ? total - prev_bytes : total;
      const double mbps = now > prev_time ? mb_per_sec(delta, now - prev_time) : 0.0;
      prev_bytes = total;
      prev_time = now;
      return mbps;
    });
    // Rolling per-tick percentiles: the p50 gauge (sampled first) rebuilds
    // the delta over the clients' cumulative histograms; p99/p999 read it.
    auto rolling = std::make_shared<RollingLatency>();
    sampler.add_gauge("p50_ms", [&clients, rolling]() {
      stats::LatencyHistogram cur;
      for (const auto& client : clients) cur.merge(client->stats().latency);
      if (cur.count() < rolling->prev.count()) rolling->prev.reset();  // meters reset
      rolling->delta = cur;
      rolling->delta.subtract(rolling->prev);
      rolling->prev = std::move(cur);
      return rolling->delta.p50_ms();
    });
    sampler.add_gauge("p99_ms", [rolling]() { return rolling->delta.p99_ms(); });
    sampler.add_gauge("p999_ms", [rolling]() { return rolling->delta.p999_ms(); });
    if (server) {
      core::StreamScheduler& sched = server->scheduler();
      sampler.add_gauge("dispatch_set",
                        [&sched]() { return static_cast<double>(sched.dispatched_count()); });
      sampler.add_gauge("candidates",
                        [&sched]() { return static_cast<double>(sched.candidate_count()); });
      sampler.add_gauge("buffered_streams",
                        [&sched]() { return static_cast<double>(sched.buffered_count()); });
      sampler.add_gauge("streams",
                        [&sched]() { return static_cast<double>(sched.stream_count()); });
      sampler.add_gauge("pool_mb", [&sched]() {
        return static_cast<double>(sched.pool().committed()) / 1e6;
      });
      sampler.add_gauge("extent_mb", [&sched]() {
        return static_cast<double>(sched.pool().extent_slab().live_bytes()) / 1e6;
      });
      sampler.add_gauge("degraded_disks", [&sched]() {
        return static_cast<double>(sched.failed_device_count());
      });
    }
    for (std::size_t i = 0; i < node.device_count(); ++i) {
      sampler.add_gauge("disk" + std::to_string(i) + ".queue_depth", [&node, i]() {
        return static_cast<double>(node.disk_of(i).queue_depth());
      });
    }
    sampler.start();
  }

  simulator.run_until(config.warmup);
  for (auto& client : clients) client->begin_measurement();
  attributor.begin_measurement();
  const SimTime t0 = simulator.now();
  const SimTime t1 = t0 + config.measure;
  simulator.run_until(t1);

  ExperimentResult result;
  double min_mbps = 1e18;
  double max_mbps = 0.0;
  result.stream_mbps.reserve(clients.size());
  for (const auto& client : clients) {
    const auto& cs = client->stats();
    const double mbps = cs.throughput.mbps(t0, t1);
    result.stream_mbps.push_back(mbps);
    result.total_mbps += mbps;
    min_mbps = std::min(min_mbps, mbps);
    max_mbps = std::max(max_mbps, mbps);
    result.requests_completed += cs.completed;
    result.client_errors += cs.errors;
    result.latency.merge(cs.latency);
  }
  result.min_stream_mbps = clients.empty() ? 0.0 : min_mbps;
  result.max_stream_mbps = max_mbps;
  result.disk_totals = node.disk_totals();
  result.controller_totals = node.controller_totals();
  result.sim_events_dispatched = simulator.executed_events();
  result.sim_wheel_cascades = simulator.wheel_cascades();
  if (server) {
    result.scheduler_stats = server->scheduler().stats();
    result.server_stats = server->stats();
    result.classifier_stats = server->classifier().stats();
    result.staging_stats = server->scheduler().staging_stats();
    result.host_cpu_utilization =
        server->scheduler().cpu().stats().utilization(t1);
    result.peak_buffer_memory = server->scheduler().pool().stats().peak_committed;
    result.devices_failed = server->scheduler().failed_device_count();
  }
  if (stack.injector() != nullptr) result.fault_stats = stack.injector()->stats();
  if (stack.remote() != nullptr) result.net_fault_stats = stack.remote()->fault_stats();
  result.retry_stats = stack.retry_totals();
  result.raid_kind = stack.raid_spec().kind;
  result.mirror_stats = stack.mirror_totals();
  if (config.sample_interval > 0) {
    sampler.stop();
    result.timeseries = sampler.take();
  }
  if (attribution) {
    result.breakdown = attributor.breakdown();
    result.breakdown.enabled = true;
    // Device-level views (whole run, including warm-up: the devices keep
    // recording from time zero — documented in DESIGN.md §14).
    for (std::size_t i = 0; i < node.device_count(); ++i) {
      result.breakdown.disk_queue.merge(node.disk_of(i).queue_wait());
      result.breakdown.disk_service.merge(node.disk_of(i).service_time());
    }
    if (stack.remote() != nullptr) {
      result.breakdown.net_response.merge(stack.remote()->response_transit());
    }
  }
  result.slo_report = obs::SloEngine::evaluate(config.slo, slo_windows, result.latency);
  if (config.flight != nullptr && result.slo_report.enabled && !result.slo_report.pass) {
    config.flight->record(obs::FlightCode::kSloBreach, simulator.now(), 0,
                          result.slo_report.windows_breached,
                          result.slo_report.windows_evaluated);
  }
  return result;
}

}  // namespace sst::experiment
