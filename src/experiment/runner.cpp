#include "experiment/runner.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace sst::experiment {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Simulator simulator;
  node::StorageNode node(simulator, config.node);

  std::unique_ptr<core::StorageServer> server;
  if (config.scheduler.has_value()) {
    server = node.make_server(*config.scheduler);
  }

  workload::RequestSink sink;
  if (server) {
    sink = [srv = server.get()](core::ClientRequest req) { srv->submit(std::move(req)); };
  } else {
    auto devices = node.devices();
    sink = [devices](core::ClientRequest req) {
      blockdev::BlockRequest io;
      io.offset = req.offset;
      io.length = req.length;
      io.op = req.op;
      io.id = req.id;
      io.data = req.data;
      io.on_complete = std::move(req.on_complete);
      devices.at(req.device)->submit(std::move(io));
    };
  }

  std::unique_ptr<net::RemoteSink> remote;
  if (config.network.has_value()) {
    remote = std::make_unique<net::RemoteSink>(simulator, std::move(sink), *config.network);
    sink = remote->sink();
  }

  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(config.streams.size());
  for (const auto& spec : config.streams) {
    assert(spec.device < node.device_count());
    clients.push_back(std::make_unique<workload::StreamClient>(
        simulator, sink, spec, node.device(spec.device).capacity()));
  }
  for (auto& client : clients) client->start();

  simulator.run_until(config.warmup);
  for (auto& client : clients) client->begin_measurement();
  const SimTime t0 = simulator.now();
  const SimTime t1 = t0 + config.measure;
  simulator.run_until(t1);

  ExperimentResult result;
  double min_mbps = 1e18;
  double max_mbps = 0.0;
  result.stream_mbps.reserve(clients.size());
  for (const auto& client : clients) {
    const auto& cs = client->stats();
    const double mbps = cs.throughput.mbps(t0, t1);
    result.stream_mbps.push_back(mbps);
    result.total_mbps += mbps;
    min_mbps = std::min(min_mbps, mbps);
    max_mbps = std::max(max_mbps, mbps);
    result.requests_completed += cs.completed;
    result.latency.merge(cs.latency);
  }
  result.min_stream_mbps = clients.empty() ? 0.0 : min_mbps;
  result.max_stream_mbps = max_mbps;
  result.disk_totals = node.disk_totals();
  if (server) {
    result.scheduler_stats = server->scheduler().stats();
    result.server_stats = server->stats();
    result.host_cpu_utilization =
        server->scheduler().cpu().stats().utilization(t1);
    result.peak_buffer_memory = server->scheduler().pool().stats().peak_committed;
  }
  return result;
}

}  // namespace sst::experiment
