// ExperimentResult -> JSON via the obs metrics registry: every per-layer
// stats struct registered under its own namespace, one deterministic
// document out.
#include "experiment/runner.hpp"
#include "obs/metrics.hpp"

namespace sst::experiment {

std::string ExperimentResult::to_json() const {
  obs::MetricsRegistry reg;

  reg.gauge("throughput.total_mbps", total_mbps);
  reg.gauge("throughput.min_stream_mbps", min_stream_mbps);
  reg.gauge("throughput.max_stream_mbps", max_stream_mbps);
  reg.array("throughput.stream_mbps", stream_mbps);
  reg.counter("throughput.requests_completed", requests_completed);

  reg.histogram("latency", latency);

  // Attribution and SLO groups only appear when the feature ran, keeping
  // the export byte-identical for plain runs (golden parity).
  if (breakdown.enabled) {
    reg.counter("latency_breakdown.attributed", breakdown.attributed);
    reg.counter("latency_breakdown.staged_bytes_copied", breakdown.staged_copied);
    reg.histogram("latency_breakdown.ingress", breakdown.ingress);
    reg.histogram("latency_breakdown.queue", breakdown.queue);
    reg.histogram("latency_breakdown.staging", breakdown.staging);
    reg.histogram("latency_breakdown.uplink", breakdown.uplink);
    // Per-stage totals: the four stage sums partition the clients' summed
    // end-to-end response time (stage_sum_ms == end_to_end_sum_ms up to
    // floating-point rounding).
    reg.gauge("latency_breakdown.ingress_sum_ms", breakdown.ingress.total_ms());
    reg.gauge("latency_breakdown.queue_sum_ms", breakdown.queue.total_ms());
    reg.gauge("latency_breakdown.staging_sum_ms", breakdown.staging.total_ms());
    reg.gauge("latency_breakdown.uplink_sum_ms", breakdown.uplink.total_ms());
    reg.gauge("latency_breakdown.stage_sum_ms", breakdown.stage_sum_ms());
    reg.gauge("latency_breakdown.end_to_end_sum_ms", latency.total_ms());
    // Device-level views (whole run, decoupled from requests by prefetch).
    reg.histogram("latency_breakdown.disk_queue", breakdown.disk_queue);
    reg.histogram("latency_breakdown.disk_service", breakdown.disk_service);
    if (breakdown.net_response.count() > 0) {
      reg.histogram("latency_breakdown.net_response", breakdown.net_response);
    }
  }
  if (slo_report.enabled) {
    reg.text("slo.verdict", slo_report.pass ? "pass" : "fail");
    reg.gauge("slo.objective_ms", slo_report.objective_ms);
    reg.gauge("slo.quantile", slo_report.quantile);
    reg.gauge("slo.window_ms", slo_report.window_ms);
    reg.gauge("slo.burn_rate_allowed", slo_report.burn_rate_allowed);
    reg.gauge("slo.burn_rate_observed", slo_report.burn_rate_observed);
    reg.counter("slo.windows_evaluated", slo_report.windows_evaluated);
    reg.counter("slo.windows_breached", slo_report.windows_breached);
    reg.gauge("slo.worst_window_ms", slo_report.worst_window_ms);
    reg.gauge("slo.overall_ms", slo_report.overall_ms);
    reg.counter("slo.samples", slo_report.samples);
  }

  reg.counter("disk.bytes_requested", disk_totals.bytes_requested);
  reg.counter("disk.bytes_from_media", disk_totals.bytes_from_media);
  reg.counter("disk.commands", disk_totals.commands);
  reg.counter("disk.cache_hits", disk_totals.cache_hits);
  reg.counter("disk.cache_misses", disk_totals.cache_misses);
  reg.counter("disk.wasted_prefetch_sectors", disk_totals.wasted_prefetch_sectors);
  reg.gauge("disk.seek_time_ms", to_millis(disk_totals.seek_time));
  reg.gauge("disk.busy_time_ms", to_millis(disk_totals.busy_time));

  reg.counter("controller.commands", controller_totals.commands);
  reg.counter("controller.bytes_to_host", controller_totals.bytes_to_host);
  reg.gauge("controller.bus_busy_time_ms", to_millis(controller_totals.bus_busy_time));
  reg.counter("controller.cache_hits", controller_totals.cache_hits);
  reg.counter("controller.cache_misses", controller_totals.cache_misses);
  reg.counter("controller.cache_evictions", controller_totals.cache_evictions);
  reg.counter("controller.prefetched_bytes", controller_totals.prefetched_bytes);
  reg.counter("controller.wasted_prefetch_bytes",
              controller_totals.wasted_prefetch_bytes);

  reg.counter("scheduler.streams_created", scheduler_stats.streams_created);
  reg.counter("scheduler.streams_retired", scheduler_stats.streams_retired);
  reg.counter("scheduler.disk_reads", scheduler_stats.disk_reads);
  reg.counter("scheduler.bytes_prefetched", scheduler_stats.bytes_prefetched);
  reg.counter("scheduler.client_completions", scheduler_stats.client_completions);
  reg.counter("scheduler.bytes_served", scheduler_stats.bytes_served);
  reg.counter("scheduler.buffer_hits", scheduler_stats.buffer_hits);
  reg.counter("scheduler.rotations", scheduler_stats.rotations);
  reg.counter("scheduler.dispatch_stalls", scheduler_stats.dispatch_stalls);
  reg.counter("scheduler.gc_buffers_reclaimed", scheduler_stats.gc_buffers_reclaimed);
  reg.counter("scheduler.gc_bytes_wasted", scheduler_stats.gc_bytes_wasted);
  reg.counter("scheduler.gc_streams_retired", scheduler_stats.gc_streams_retired);
  reg.counter("scheduler.fallback_direct_reads", scheduler_stats.fallback_direct_reads);
  reg.counter("scheduler.escalated_reads", scheduler_stats.escalated_reads);
  reg.counter("scheduler.prefetch_errors", scheduler_stats.prefetch_errors);
  reg.counter("scheduler.streams_evicted", scheduler_stats.streams_evicted);
  reg.counter("scheduler.requests_failed", scheduler_stats.requests_failed);
  reg.counter("scheduler.devices_failed", devices_failed);

  reg.counter("sim.events_dispatched", sim_events_dispatched);
  reg.counter("sim.wheel_cascades", sim_wheel_cascades);

  // The shard group only appears when the run actually sharded, keeping
  // the export byte-identical for single-threaded runs (golden parity).
  if (shard_summary.shards > 1) {
    reg.counter("sim.shard_count", shard_summary.shards);
    reg.counter("sim.shard_requested", shard_summary.requested);
    reg.gauge("sim.shard_lookahead_ms", to_millis(shard_summary.lookahead));
    reg.counter("sim.shard_windows", shard_summary.windows);
    reg.counter("sim.shard_cross_events", shard_summary.cross_shard_events);
    reg.counter("sim.shard_horizon_violations", shard_summary.horizon_violations);
    reg.counter("sim.shard_min_events", shard_summary.min_shard_events);
    reg.counter("sim.shard_max_events", shard_summary.max_shard_events);
  }

  // The uring/reactor groups only appear for real-backend runs, keeping
  // simulated exports byte-identical (golden parity).
  if (uring_summary.enabled) {
    reg.counter("uring.devices", uring_summary.devices);
    reg.counter("uring.direct_devices", uring_summary.direct_devices);
    reg.counter("uring.submitted", uring_summary.submitted);
    reg.counter("uring.completed", uring_summary.completed);
    reg.counter("uring.errors", uring_summary.errors);
    reg.counter("uring.short_resubmits", uring_summary.short_resubmits);
    reg.counter("uring.transient_retries", uring_summary.transient_retries);
    reg.counter("uring.fixed_buffer_ops", uring_summary.fixed_buffer_ops);
    reg.counter("uring.direct_ops", uring_summary.direct_ops);
    reg.counter("uring.backlog_peak", uring_summary.backlog_peak);
    reg.counter("uring.enter_syscalls", uring_summary.enter_syscalls);
    reg.counter("uring.flush_batches", uring_summary.flush_batches);
    reg.counter("uring.sqes_flushed", uring_summary.sqes_flushed);
    reg.counter("uring.batch_size_max", uring_summary.batch_size_max);
    reg.gauge("uring.syscalls_per_request", uring_summary.syscalls_per_request());
    std::vector<double> buckets(uring_summary.batch_size_log2.begin(),
                                uring_summary.batch_size_log2.end());
    reg.array("uring.batch_size_log2", std::move(buckets));
    std::vector<double> per_device(uring_summary.per_device_completed.begin(),
                                   uring_summary.per_device_completed.end());
    reg.array("uring.device_completed", std::move(per_device));
  }
  if (reactor_summary.enabled) {
    reg.counter("reactor.count", reactor_summary.reactors);
    reg.counter("reactor.requested", reactor_summary.requested);
    reg.counter("reactor.wakeups", reactor_summary.wakeups);
    reg.counter("reactor.completion_wakeups", reactor_summary.completion_wakeups);
    reg.counter("reactor.timer_wakeups", reactor_summary.timer_wakeups);
    reg.counter("reactor.spurious_wakeups", reactor_summary.spurious_wakeups);
    reg.counter("reactor.epoll_waits", reactor_summary.epoll_waits);
    reg.counter("reactor.inring_waits", reactor_summary.inring_waits);
    reg.counter("reactor.idle_sleeps", reactor_summary.idle_sleeps);
    reg.counter("reactor.completions", reactor_summary.completions);
  }

  reg.counter("staging.bytes_copied", staging_stats.bytes_copied);
  reg.counter("staging.zero_copy_hits", staging_stats.zero_copy_hits);

  reg.counter("server.requests", server_stats.requests);
  reg.counter("server.sequential_requests", server_stats.sequential_requests);
  reg.counter("server.direct_reads", server_stats.direct_reads);
  reg.counter("server.direct_writes", server_stats.direct_writes);
  reg.counter("server.rejected_requests", server_stats.rejected_requests);

  reg.counter("fault.commands_seen", fault_stats.commands_seen);
  reg.counter("fault.media_errors", fault_stats.media_errors);
  reg.counter("fault.persistent_errors", fault_stats.persistent_errors);
  reg.counter("fault.hangs", fault_stats.hangs);
  reg.counter("fault.spikes", fault_stats.spikes);

  reg.counter("net.dropped_requests", net_fault_stats.dropped);
  reg.counter("net.spiked_requests", net_fault_stats.spiked);
  reg.counter("net.transport_errors", net_fault_stats.transport_errors);

  // The raid group only appears when a raid layer was stacked, keeping the
  // export byte-identical for the (default) flat device view.
  if (raid_kind != io::RaidSpec::Kind::kNone) {
    reg.text("raid.kind", to_string(raid_kind));
    if (raid_kind == io::RaidSpec::Kind::kMirror) {
      reg.counter("raid.reads", mirror_stats.reads);
      reg.counter("raid.writes", mirror_stats.writes);
      reg.counter("raid.member_errors", mirror_stats.member_errors);
      reg.counter("raid.failovers", mirror_stats.failovers);
      reg.counter("raid.degraded_reads", mirror_stats.degraded_reads);
      reg.counter("raid.degraded_writes", mirror_stats.degraded_writes);
      reg.counter("raid.read_failures", mirror_stats.read_failures);
      reg.counter("raid.write_failures", mirror_stats.write_failures);
    }
  }

  reg.counter("retry.commands", retry_stats.commands);
  reg.counter("retry.retries_total", retry_stats.retries_total);
  reg.counter("retry.timeouts", retry_stats.timeouts);
  reg.counter("retry.media_errors", retry_stats.media_errors);
  reg.counter("retry.recovered", retry_stats.recovered);
  reg.counter("retry.giveups", retry_stats.giveups);
  reg.gauge("retry.backoff_time_ms", to_millis(retry_stats.backoff_time));

  reg.counter("workload.client_errors", client_errors);

  reg.counter("classifier.requests_seen", classifier_stats.requests_seen);
  reg.counter("classifier.regions_allocated", classifier_stats.regions_allocated);
  reg.counter("classifier.regions_collected", classifier_stats.regions_collected);
  reg.counter("classifier.streams_detected", classifier_stats.streams_detected);
  reg.counter("classifier.bitmap_bytes", classifier_stats.bitmap_bytes);

  reg.gauge("host.cpu_utilization", host_cpu_utilization);
  reg.counter("host.peak_buffer_memory", peak_buffer_memory);

  return reg.to_json();
}

}  // namespace sst::experiment
