// Parallel sweep engine: every paper figure is a grid of independent,
// deterministic, single-threaded simulations, so the only safe — and the
// most profitable — parallelism is across grid points. run_sweep fans
// experiment runs over a fixed-size thread pool while keeping results in
// input order, bit-identical to a serial run.
#pragma once

#include <functional>
#include <vector>

#include "experiment/runner.hpp"

namespace sst::experiment {

/// Worker count used when run_sweep is called with workers == 0: the
/// SST_BENCH_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency (at least 1).
[[nodiscard]] unsigned default_sweep_workers();

/// Run every configuration across up to `workers` threads (0 = the
/// default_sweep_workers() policy). Results come back in input order and
/// are bit-identical to running each config serially — run_experiment is
/// deterministic and shares no mutable state between runs. The first
/// exception thrown by any run is rethrown after outstanding work drains.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, unsigned workers = 0);

/// Generalized fan-out for sweeps whose points are not plain
/// ExperimentConfigs (custom harnesses around the simulator). Each job must
/// be independent and deterministic; same ordering/exception contract as
/// run_sweep.
[[nodiscard]] std::vector<ExperimentResult> run_sweep_jobs(
    const std::vector<std::function<ExperimentResult()>>& jobs, unsigned workers = 0);

}  // namespace sst::experiment
