// Shard planning for the parallel experiment runner: how a TopologySpec
// splits into per-shard device-stack slices, which lookahead the barrier
// uses, and how the global workload seed fans out into per-shard /
// per-stream seeds. Pure config-time logic (no simulator), separated from
// the runner so tests can pin the planning rules directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "node/topology.hpp"

namespace sst::experiment {

/// One shard's contiguous slab of the deployment, in controller, physical
/// device, and logical (post-raid) device coordinates.
struct ShardSlice {
  std::uint32_t ctrl_begin = 0;
  std::uint32_t ctrl_count = 0;
  std::uint32_t dev_begin = 0;  ///< physical devices (controller-major)
  std::uint32_t dev_count = 0;
  std::uint32_t logical_begin = 0;  ///< flat logical view indices
  std::uint32_t logical_count = 0;
};

struct ShardPlan {
  std::uint32_t requested = 1;  ///< configured shards before clamping
  SimTime lookahead = 0;        ///< barrier window == interconnect latency
  std::vector<ShardSlice> slices;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(slices.size());
  }

  /// Which shard owns logical device `device`.
  [[nodiscard]] std::uint32_t shard_of_logical(std::uint32_t device) const {
    for (std::uint32_t k = 0; k < shard_count(); ++k) {
      const ShardSlice& s = slices[k];
      if (device >= s.logical_begin && device < s.logical_begin + s.logical_count) {
        return k;
      }
    }
    return 0;
  }
};

/// Fallback interconnect latency (and thus lookahead) when the stack has no
/// network layer to derive one from: comfortably above the per-command
/// controller overhead (~0.3 ms bus time for a 64 KiB transfer) and small
/// against disk service times, so the added client round-trip latency is
/// noise while windows stay long enough to amortize the barrier.
inline constexpr SimTime kDefaultShardLookahead = usec(500);

/// Split `topology` into at most `requested` shards at controller
/// boundaries (a controller and its disks never straddle shards). Clamps to
/// the controller count; falls back toward fewer shards when the raid
/// layout couples devices across a proposed boundary (any striping, or a
/// mirror group splitting). `lookahead_override` > 0 pins the lookahead;
/// otherwise it derives from the network link latency when one is stacked
/// (never below the default — the lookahead bounds delivery latency, so a
/// larger safe value only helps) or kDefaultShardLookahead when not.
[[nodiscard]] ShardPlan plan_shards(const node::TopologySpec& topology,
                                    std::uint32_t requested,
                                    SimTime lookahead_override = 0);

/// Per-shard workload seed: global seed ⊕ shard id pushed through the
/// mix64 chain, so shards draw decorrelated stream sequences.
[[nodiscard]] constexpr std::uint64_t shard_workload_seed(std::uint64_t workload_seed,
                                                          std::uint32_t shard) {
  return derive_seed(workload_seed ^ shard, 0x53484152ULL /* "SHAR" */);
}

/// Per-stream seed within a shard, keyed by the shard-local ordinal (the
/// stream's position among the shard's streams in spec order).
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t shard_seed,
                                                  std::uint32_t ordinal) {
  return derive_seed(shard_seed, ordinal);
}

struct ExperimentConfig;
struct ExperimentResult;

/// The parallel engine behind run_experiment, for plans with > 1 shard.
/// Callers go through run_experiment, which plans and dispatches.
[[nodiscard]] ExperimentResult run_experiment_sharded(const ExperimentConfig& config,
                                                      const ShardPlan& plan);

}  // namespace sst::experiment
