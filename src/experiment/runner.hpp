// Shared experiment harness: builds a simulated storage node, optionally
// fronts it with the stream-scheduler server, attaches closed-loop stream
// clients, runs warm-up + measurement windows on the event simulator, and
// aggregates the numbers every paper figure needs (aggregate and per-disk
// MB/s, response-time distribution, cache/scheduler counters).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "net/network.hpp"
#include "core/scheduler.hpp"
#include "core/server.hpp"
#include "node/storage_node.hpp"
#include "stats/histogram.hpp"
#include "workload/generator.hpp"

namespace sst::experiment {

struct ExperimentConfig {
  node::NodeConfig node;
  /// Present = route requests through the StorageServer (the paper's
  /// system); absent = clients hit the block devices directly (baseline).
  std::optional<core::SchedulerParams> scheduler;
  /// Present = clients reach the node over a simulated network link (the
  /// paper's GigE testbed; response-time measurements then include the
  /// network hops, as in §5.5). Absent = clients are local.
  std::optional<net::LinkParams> network;
  std::vector<workload::StreamSpec> streams;
  SimTime warmup = sec(4);
  SimTime measure = sec(20);
};

struct ExperimentResult {
  double total_mbps = 0.0;
  double min_stream_mbps = 0.0;
  double max_stream_mbps = 0.0;
  /// Per-stream throughput, in the order of ExperimentConfig::streams.
  std::vector<double> stream_mbps;
  std::uint64_t requests_completed = 0;
  stats::LatencyHistogram latency;  ///< merged over all streams
  node::NodeDiskTotals disk_totals;
  core::SchedulerStats scheduler_stats;  ///< zeros when no scheduler
  core::ServerStats server_stats;        ///< zeros when no scheduler
  double host_cpu_utilization = 0.0;
  Bytes peak_buffer_memory = 0;

  [[nodiscard]] double per_disk_mbps(std::uint32_t disks) const {
    return disks ? total_mbps / disks : 0.0;
  }
};

/// Run one configuration to completion. Deterministic: same config, same
/// result.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace sst::experiment
