// Shared experiment harness: builds a simulated storage node, optionally
// fronts it with the stream-scheduler server, attaches closed-loop stream
// clients, runs warm-up + measurement windows on the event simulator, and
// aggregates the numbers every paper figure needs (aggregate and per-disk
// MB/s, response-time distribution, cache/scheduler counters).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/reliable_device.hpp"
#include "core/scheduler.hpp"
#include "core/server.hpp"
#include "net/network.hpp"
#include "node/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "raid/mirrored_volume.hpp"
#include "stats/histogram.hpp"
#include "workload/generator.hpp"

namespace sst::experiment {

/// Which execution backend carries the experiment (`backend.*` keys).
/// kSim is the default and the only deterministic one; kReal replays the
/// same scheduler/client wiring against real files through the io_uring
/// block device on a wall-clock ExecutionContext.
struct BackendConfig {
  enum class Kind : std::uint8_t { kSim, kReal };
  Kind kind = Kind::kSim;
  /// Backing file for kReal (`backend.path`), pre-formatted with
  /// scripts/mkpattern.py; carved into one slice per logical device.
  std::string path;
  /// Per-device io_uring depth (`backend.queue_depth`).
  std::uint32_t queue_depth = 64;
  /// Attempt O_DIRECT (`backend.direct`); buffered fallback is automatic
  /// on filesystems that refuse it (tmpfs).
  bool direct = true;
  /// Reactor threads for kReal (`backend.reactors`). > 1 carves the logical
  /// devices into contiguous per-reactor groups, each with its own
  /// RealContext, rings and clients on a dedicated thread — the real-I/O
  /// mirror of `sim.shards`. 1 (default) runs the single-reactor engine
  /// inline, byte-compatible with the pre-reactor metrics surface.
  std::uint32_t reactors = 1;
};

struct ExperimentConfig {
  /// The whole simulated deployment: the physical node plus the declarative
  /// device stack above it (fault injection, retry, raid, network link).
  node::TopologySpec topology;
  /// Present = route requests through the StorageServer (the paper's
  /// system); absent = clients hit the block devices directly (baseline).
  std::optional<core::SchedulerParams> scheduler;
  std::vector<workload::StreamSpec> streams;
  SimTime warmup = sec(4);
  SimTime measure = sec(20);
  /// Present = record request-lifecycle trace events into this tracer
  /// (owned by the caller; one tracer per experiment, so parallel sweep
  /// points can trace concurrently). Absent = zero tracing overhead.
  obs::Tracer* tracer = nullptr;
  /// > 0 = sample live gauges (dispatch-set occupancy, buffer-pool bytes,
  /// per-disk queue depth, windowed MB/s) every `sample_interval` of sim
  /// time into ExperimentResult::timeseries.
  SimTime sample_interval = 0;
  /// Event-engine shards (`sim.shards` / `topology.shards` keys). 1 = the
  /// single-threaded engine, byte-identical to every release so far. > 1 =
  /// the deployment splits at controller boundaries into that many
  /// device-stack shards (clamped to the controller count and the raid
  /// layout) running in parallel under a conservative-lookahead barrier,
  /// with the clients reaching the shards over a modelled interconnect of
  /// one lookahead per hop. Deterministic for a fixed seed and shard count.
  std::uint32_t shards = 1;
  /// Cross-shard interconnect latency == the barrier lookahead
  /// (`sim.lookahead` key). 0 = derive from the stack's network link
  /// latency, or the built-in default without one.
  SimTime lookahead = 0;
  /// Global workload seed (`workload.seed` key). Streams whose spec leaves
  /// `seed` at 0 get an independent per-stream seed derived from this via
  /// the per-shard hash chain (see experiment/sharding.hpp).
  std::uint64_t workload_seed = 0x53535457'4C4F4144ULL;  // "SSTWLOAD"
  /// Declarative tail-latency objective (`slo.*` keys). Enabled when
  /// `slo.objective > 0`: response times are additionally collected into
  /// per-window histograms and judged by the SloEngine after the run.
  obs::SloSpec slo;
  /// Per-request latency attribution (`obs.attribution` key, implied by an
  /// enabled SLO): stage timestamps are threaded through the request
  /// lifecycle and exported as the latency_breakdown metrics group.
  bool attribution = false;
  /// Present = journal request-lifecycle events into this flight recorder
  /// (owned by the caller, like the tracer). Sharded runs record into
  /// per-shard rings merged back into this one after the engine joins.
  obs::FlightRecorder* flight = nullptr;
  /// Execution backend (`backend.*` keys). kSim unless configured
  /// otherwise; see run_experiment_real() for what kReal supports.
  BackendConfig backend;
};

/// io_uring device counters summed over every ring of a real run; `enabled`
/// only when backend.kind = real executed, which gates the uring.* metrics
/// group (sim exports stay byte-identical). Mirrors blockdev::UringStats
/// without depending on the uring header.
struct UringSummary {
  bool enabled = false;
  std::uint32_t devices = 0;         ///< rings opened (one per logical device)
  std::uint32_t direct_devices = 0;  ///< rings whose backing fd took O_DIRECT
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t short_resubmits = 0;
  std::uint64_t transient_retries = 0;
  std::uint64_t fixed_buffer_ops = 0;
  std::uint64_t direct_ops = 0;
  std::uint64_t backlog_peak = 0;  ///< max over devices
  std::uint64_t enter_syscalls = 0;
  std::uint64_t flush_batches = 0;
  std::uint64_t sqes_flushed = 0;
  std::uint64_t batch_size_max = 0;
  /// Summed flushed-batch-size histogram: bucket i counts batches of
  /// [2^i, 2^(i+1)) SQEs, last bucket open-ended (kUringBatchBuckets wide).
  std::array<std::uint64_t, 8> batch_size_log2{};
  /// Completed requests per logical device (global device order) — the
  /// balance figure the multi-reactor CI smoke asserts on.
  std::vector<std::uint64_t> per_device_completed;

  /// io_uring_enter calls per completed request, the submission-batching
  /// figure of merit (one enter per request ~= 1.0+; batched pipelines at
  /// depth reach well below 0.2).
  [[nodiscard]] double syscalls_per_request() const {
    return completed > 0 ? static_cast<double>(enter_syscalls) /
                               static_cast<double>(completed)
                         : 0.0;
  }
};

/// Reactor wakeup accounting summed over every RealContext of a real run;
/// `enabled` gates the reactor.* metrics group like UringSummary.
struct ReactorSummary {
  bool enabled = false;
  std::uint32_t reactors = 1;   ///< effective reactor count
  std::uint32_t requested = 1;  ///< configured value before clamping
  std::uint64_t wakeups = 0;
  std::uint64_t completion_wakeups = 0;
  std::uint64_t timer_wakeups = 0;
  std::uint64_t spurious_wakeups = 0;
  std::uint64_t epoll_waits = 0;
  std::uint64_t inring_waits = 0;
  std::uint64_t idle_sleeps = 0;
  std::uint64_t completions = 0;
};

/// Parallel-engine counters; `shards` stays 1 (and nothing is exported)
/// for single-threaded runs.
struct ShardSummary {
  std::uint32_t shards = 1;     ///< effective shard count
  std::uint32_t requested = 1;  ///< configured value before clamping
  SimTime lookahead = 0;
  std::uint64_t windows = 0;             ///< barrier windows executed
  std::uint64_t cross_shard_events = 0;  ///< mailbox envelopes delivered
  std::uint64_t horizon_violations = 0;  ///< late deliveries (should be 0)
  std::uint64_t min_shard_events = 0;    ///< least-loaded shard's events
  std::uint64_t max_shard_events = 0;    ///< most-loaded shard's events
};

struct ExperimentResult {
  double total_mbps = 0.0;
  double min_stream_mbps = 0.0;
  double max_stream_mbps = 0.0;
  /// Per-stream throughput, in the order of ExperimentConfig::streams.
  std::vector<double> stream_mbps;
  std::uint64_t requests_completed = 0;
  stats::LatencyHistogram latency;  ///< merged over all streams
  node::NodeDiskTotals disk_totals;
  node::NodeControllerTotals controller_totals;
  core::SchedulerStats scheduler_stats;    ///< zeros when no scheduler
  core::ServerStats server_stats;          ///< zeros when no scheduler
  core::ClassifierStats classifier_stats;  ///< zeros when no scheduler
  core::StagingStats staging_stats;        ///< zeros when no scheduler
  /// Event-engine counters for the whole run (warm-up + measurement).
  std::uint64_t sim_events_dispatched = 0;
  std::uint64_t sim_wheel_cascades = 0;
  double host_cpu_utilization = 0.0;
  Bytes peak_buffer_memory = 0;
  fault::FaultStats fault_stats;     ///< zeros when fault injection is off
  core::RetryStats retry_stats;      ///< summed over devices; zeros when off
  net::NetFaultStats net_fault_stats;  ///< zeros without network faults
  /// Raid aggregation in effect for this run (kNone = flat device view; the
  /// "raid" metrics group is only exported when a raid layer was active).
  io::RaidSpec::Kind raid_kind = io::RaidSpec::Kind::kNone;
  raid::MirrorStats mirror_stats;    ///< summed over groups; zeros without kMirror
  std::uint64_t devices_failed = 0;  ///< declared failed by the scheduler
  std::uint64_t client_errors = 0;   ///< client requests completed in error
  /// Parallel-engine counters; exported as sim.shard_* only when the run
  /// actually sharded (keeping single-shard exports byte-identical).
  ShardSummary shard_summary;
  /// Real-backend ring counters; exported as uring.* only for real runs.
  UringSummary uring_summary;
  /// Real-backend reactor counters; exported as reactor.* only for real runs.
  ReactorSummary reactor_summary;
  /// Sampled gauges; empty unless ExperimentConfig::sample_interval > 0.
  obs::TimeSeries timeseries;
  /// SLO verdict; `enabled` only when the config declared an objective.
  obs::SloReport slo_report;
  /// Per-stage latency attribution; `enabled` only when attribution ran.
  obs::LatencyBreakdown breakdown;

  [[nodiscard]] double per_disk_mbps(std::uint32_t disks) const {
    return disks ? total_mbps / disks : 0.0;
  }

  /// Complete metrics export (throughput, latency quantiles and histogram
  /// buckets, disk/controller/scheduler/server counters) as one JSON
  /// document. Deterministic: same result, same bytes.
  [[nodiscard]] std::string to_json() const;
};

/// Run one configuration to completion. Deterministic: same config, same
/// result — except with backend.kind = kReal, where wall-clock timing makes
/// every run unique.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// True when the library was built with the io_uring backend
/// (-DSST_WITH_URING=ON); backend.kind = real is rejected otherwise.
[[nodiscard]] bool real_backend_available();

/// Run the configuration against real files: one UringBlockDevice slice of
/// `backend.path` per logical device, the same scheduler/server/client
/// wiring as the simulation, on a wall-clock execution context. Supports
/// the flat device view only (no fault injection, raid, network or sharded
/// engine — those model hardware the real backend actually has). Throws
/// std::runtime_error when the backend is unavailable or the backing file
/// doesn't fit the topology.
[[nodiscard]] ExperimentResult run_experiment_real(const ExperimentConfig& config);

}  // namespace sst::experiment
